//! The run-time inspector: pattern characterization and the per-scheme
//! pre-analyses (conflict marking for `sel`, owner lists for `lw`).
//!
//! "The characterization of the access pattern is performed at compile
//! time whenever possible, and otherwise, at run-time, during an inspector
//! phase or during speculative execution."  Here it is the inspector
//! phase: one pass over the reference stream, after which the decision
//! model (`crate::model`) picks a scheme and the chosen executor may reuse
//! the analyses.

use smartapps_workloads::pattern::AccessPattern;
use smartapps_workloads::{block_range, elem_block_range, PatternChars};

/// Which elements are referenced by more than one thread under block
/// scheduling (the privatization set of the `sel` scheme).
#[derive(Debug, Clone)]
pub struct ConflictInfo {
    /// Thread count the analysis was computed for.
    pub threads: usize,
    /// Number of conflicting elements.
    pub num_conflicting: usize,
    /// Element -> compact conflict slot, or `u32::MAX` for non-conflicting.
    pub compact: Vec<u32>,
    /// Compact slot -> element.
    pub conflicting_elements: Vec<u32>,
}

/// Which iterations each thread must execute under owner-computes
/// (iteration replication of the `lw` scheme).
#[derive(Debug, Clone)]
pub struct OwnerLists {
    /// Thread count the analysis was computed for.
    pub threads: usize,
    /// Per-thread iteration lists (ascending).
    pub iters_of: Vec<Vec<u32>>,
    /// Replication factor: total listed iterations / loop iterations.
    pub replication: f64,
}

/// The complete inspector result.
#[derive(Debug, Clone)]
pub struct Inspection {
    /// Section 4 characterization measures.
    pub chars: PatternChars,
    /// Conflict analysis for `sel`.
    pub conflicts: ConflictInfo,
    /// Owner lists for `lw`.
    pub owners: OwnerLists,
}

/// Inspector entry points.
pub struct Inspector;

/// Sentinel: element not yet referenced.
const UNOWNED: u8 = u8::MAX;
/// Sentinel: element referenced by at least two threads.
const CONFLICT: u8 = u8::MAX - 1;

impl Inspector {
    /// Run the full inspector for a block-scheduled loop on `threads`
    /// threads.
    pub fn analyze(pat: &AccessPattern, threads: usize) -> Inspection {
        assert!((1..=250).contains(&threads), "thread count {threads}");
        Inspection {
            chars: PatternChars::measure(pat),
            conflicts: Self::conflicts(pat, threads),
            owners: Self::owners(pat, threads),
        }
    }

    /// Conflict analysis only.
    pub fn conflicts(pat: &AccessPattern, threads: usize) -> ConflictInfo {
        let n = pat.num_elements;
        let mut owner = vec![UNOWNED; n];
        for t in 0..threads {
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    match owner[x] {
                        UNOWNED => owner[x] = t as u8,
                        CONFLICT => {}
                        o if o as usize == t => {}
                        _ => owner[x] = CONFLICT,
                    }
                }
            }
        }
        let mut compact = vec![u32::MAX; n];
        let mut conflicting_elements = Vec::new();
        for (x, &o) in owner.iter().enumerate() {
            if o == CONFLICT {
                compact[x] = conflicting_elements.len() as u32;
                conflicting_elements.push(x as u32);
            }
        }
        ConflictInfo {
            threads,
            num_conflicting: conflicting_elements.len(),
            compact,
            conflicting_elements,
        }
    }

    /// Owner-list analysis only.
    pub fn owners(pat: &AccessPattern, threads: usize) -> OwnerLists {
        let n = pat.num_elements;
        // Element -> owning thread, from the line-aligned block partition.
        let bounds: Vec<usize> = (0..threads)
            .map(|t| elem_block_range(n, t, threads).end)
            .collect();
        let owner_of = |x: usize| -> usize { bounds.partition_point(|&b| b <= x) };
        let mut iters_of: Vec<Vec<u32>> = vec![Vec::new(); threads];
        let mut listed = 0usize;
        let mut hit: Vec<u32> = vec![u32::MAX; threads];
        for i in 0..pat.num_iterations() {
            for r in pat.ref_range(i) {
                let t = owner_of(pat.indices[r] as usize);
                if hit[t] != i as u32 {
                    hit[t] = i as u32;
                    iters_of[t].push(i as u32);
                    listed += 1;
                }
            }
        }
        OwnerLists {
            threads,
            iters_of,
            replication: if pat.num_iterations() > 0 {
                listed as f64 / pat.num_iterations() as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::{Distribution, PatternSpec};

    #[test]
    fn conflicts_on_hand_built_pattern() {
        // 2 threads, 4 iterations (2 each).  Element 0 touched by both
        // halves -> conflict; 1 only by thread 0; 2 only by thread 1.
        let pat = AccessPattern::from_iters(3, &[vec![0, 1], vec![1], vec![0, 2], vec![2]]);
        let c = Inspector::conflicts(&pat, 2);
        assert_eq!(c.num_conflicting, 1);
        assert_eq!(c.conflicting_elements, vec![0]);
        assert_eq!(c.compact[0], 0);
        assert_eq!(c.compact[1], u32::MAX);
        assert_eq!(c.compact[2], u32::MAX);
    }

    #[test]
    fn single_thread_has_no_conflicts() {
        let pat = PatternSpec {
            num_elements: 100,
            iterations: 300,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 1,
        }
        .generate();
        let c = Inspector::conflicts(&pat, 1);
        assert_eq!(c.num_conflicting, 0);
    }

    #[test]
    fn clustered_patterns_conflict_less_than_uniform() {
        let mk = |dist| {
            let pat = PatternSpec {
                num_elements: 10_000,
                iterations: 10_000,
                refs_per_iter: 2,
                coverage: 1.0,
                dist,
                seed: 3,
            }
            .generate();
            Inspector::conflicts(&pat, 8).num_conflicting
        };
        let uniform = mk(Distribution::Uniform);
        let clustered = mk(Distribution::Clustered { window: 32 });
        assert!(
            clustered < uniform / 4,
            "clustered {clustered} should be far below uniform {uniform}"
        );
    }

    #[test]
    fn owner_lists_cover_every_iteration_once_per_owner() {
        let pat = AccessPattern::from_iters(16, &[vec![0, 15], vec![0, 0], vec![8], vec![15, 0]]);
        let o = Inspector::owners(&pat, 2);
        // Thread 0 owns elements 0..8, thread 1 owns 8..16.
        assert_eq!(o.iters_of[0], vec![0, 1, 3]);
        assert_eq!(o.iters_of[1], vec![0, 2, 3]);
        // Iterations 0 and 3 are replicated to both threads.
        assert!((o.replication - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn replication_factor_bounded_by_mo_and_threads() {
        let pat = PatternSpec {
            num_elements: 1000,
            iterations: 2000,
            refs_per_iter: 3,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 5,
        }
        .generate();
        for threads in [1usize, 2, 4, 8] {
            let o = Inspector::owners(&pat, threads);
            assert!(o.replication >= 1.0 - 1e-12);
            assert!(o.replication <= 3.0 + 1e-12, "at most MO owners");
            assert!(o.replication <= threads as f64 + 1e-12);
        }
    }

    #[test]
    fn full_analyze_is_consistent() {
        let pat = PatternSpec {
            num_elements: 512,
            iterations: 1024,
            refs_per_iter: 2,
            coverage: 0.5,
            dist: Distribution::Uniform,
            seed: 9,
        }
        .generate();
        let insp = Inspector::analyze(&pat, 4);
        assert_eq!(insp.chars.references, pat.num_references());
        assert_eq!(insp.conflicts.threads, 4);
        assert_eq!(insp.owners.threads, 4);
        assert!(insp.conflicts.num_conflicting <= insp.chars.distinct);
    }
}
