//! Property tests: every parallel reduction scheme is observationally
//! equivalent to the sequential loop, for arbitrary patterns, thread
//! counts and integer monoids (exact equality — no FP tolerance games).

use proptest::prelude::*;
use smartapps_reductions::{run_scheme, Inspector, Scheme};
use smartapps_workloads::pattern::{contribution_i64, sequential_reduce_i64};
use smartapps_workloads::{AccessPattern, Distribution, PatternSpec};

/// Strategy: arbitrary small access patterns in CSR form.
fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    (1usize..200, 0usize..120, 0usize..6).prop_flat_map(|(n, iters, max_refs)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..n as u32, 0..=max_refs),
            iters..=iters,
        )
        .prop_map(move |lists| AccessPattern::from_iters(n, &lists))
    })
}

/// Strategy: generator-driven patterns (exercises the real workload
/// shapes, larger than the hand-rolled CSR cases).
fn arb_generated() -> impl Strategy<Value = AccessPattern> {
    (
        16usize..5000,
        1usize..2000,
        1usize..4,
        1u32..100,
        prop_oneof![
            Just(Distribution::Uniform),
            (1.0f64..2.0).prop_map(|s| Distribution::Zipf { s }),
            (4u32..64).prop_map(|w| Distribution::Clustered { window: w }),
        ],
        any::<u64>(),
    )
        .prop_map(|(n, iters, refs, cov_pct, dist, seed)| {
            PatternSpec {
                num_elements: n,
                iterations: iters,
                refs_per_iter: refs,
                coverage: cov_pct as f64 / 100.0,
                dist,
                seed,
            }
            .generate()
        })
}

fn body(_i: usize, r: usize) -> i64 {
    contribution_i64(r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_schemes_equal_oracle_on_arbitrary_patterns(
        pat in arb_pattern(),
        threads in 1usize..9,
    ) {
        let oracle = sequential_reduce_i64(&pat);
        let insp = Inspector::analyze(&pat, threads);
        for s in Scheme::all_parallel() {
            let got = run_scheme(s, &pat, &body, threads, Some(&insp));
            prop_assert_eq!(&got, &oracle, "{} x{}", s, threads);
        }
    }

    #[test]
    fn all_schemes_equal_oracle_on_generated_patterns(
        pat in arb_generated(),
        threads in 1usize..7,
    ) {
        let oracle = sequential_reduce_i64(&pat);
        let insp = Inspector::analyze(&pat, threads);
        for s in Scheme::all_parallel() {
            let got = run_scheme(s, &pat, &body, threads, Some(&insp));
            prop_assert_eq!(&got, &oracle, "{} x{}", s, threads);
        }
    }

    #[test]
    fn inspector_invariants(
        pat in arb_generated(),
        threads in 1usize..9,
    ) {
        let insp = Inspector::analyze(&pat, threads);
        // Conflicting elements are a subset of distinct referenced ones.
        prop_assert!(insp.conflicts.num_conflicting <= insp.chars.distinct);
        // Compact map is a bijection onto conflicting_elements.
        for (slot, &e) in insp.conflicts.conflicting_elements.iter().enumerate() {
            prop_assert_eq!(insp.conflicts.compact[e as usize] as usize, slot);
        }
        // Owner lists: replication within [1, min(MO_max, threads)]
        // whenever any iteration references something.
        if pat.num_references() > 0 {
            prop_assert!(insp.owners.replication >= 0.0);
            prop_assert!(insp.owners.replication <= threads as f64 + 1e-9);
        }
        // Every iteration with references appears in at least one owner list.
        let mut seen = vec![false; pat.num_iterations()];
        for list in &insp.owners.iters_of {
            for &i in list {
                seen[i as usize] = true;
            }
        }
        for (i, &was_seen) in seen.iter().enumerate() {
            prop_assert_eq!(was_seen, !pat.refs(i).is_empty(), "iteration {}", i);
        }
        // Single thread never conflicts.
        if threads == 1 {
            prop_assert_eq!(insp.conflicts.num_conflicting, 0);
        }
    }

    #[test]
    fn characterization_invariants(pat in arb_generated()) {
        let c = smartapps_workloads::PatternChars::measure(&pat);
        prop_assert_eq!(c.references, pat.num_references());
        prop_assert!(c.distinct <= c.num_elements);
        prop_assert!(c.distinct_lines <= c.num_elements.div_ceil(8));
        prop_assert!(c.distinct_lines * 8 >= c.distinct.min(c.num_elements));
        prop_assert!(c.sp >= 0.0 && c.sp <= 1.0 + 1e-12);
        prop_assert!(c.mo <= 8.0, "refs_per_iter < 4 in this strategy");
        // CH histogram covers exactly the distinct elements.
        prop_assert_eq!(c.ch.iter().sum::<usize>(), c.distinct);
    }

    #[test]
    fn model_ranks_are_total_and_deterministic(
        pat in arb_generated(),
        threads in 1usize..9,
        lw in any::<bool>(),
    ) {
        use smartapps_reductions::{DecisionModel, ModelInput};
        let insp = Inspector::analyze(&pat, threads);
        let input = ModelInput::from_inspection(&insp, lw);
        let m = DecisionModel::default();
        let a = m.decide(&input);
        let b = m.decide(&input);
        prop_assert_eq!(a.ranking.len(), 5);
        for ((s1, c1), (s2, c2)) in a.ranking.iter().zip(b.ranking.iter()) {
            prop_assert_eq!(s1, s2);
            prop_assert_eq!(c1, c2);
        }
        // Costs ascend and are positive (lw may be infinite when barred).
        for w in a.ranking.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        if !lw {
            prop_assert!(a.best() != Scheme::Lw);
        }
    }
}
