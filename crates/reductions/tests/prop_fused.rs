//! Property tests for the fused multi-output kernels: for arbitrary
//! patterns, thread counts and fanouts K, every scheme's fused execution
//! is observationally equivalent to K independent sequential oracles —
//! the contract the runtime's fused sweeps rely on (exact equality on
//! integer monoids, no FP tolerance games).

use proptest::prelude::*;
use smartapps_reductions::{run_fused, FusedBody, Inspector, Scheme};
use smartapps_workloads::pattern::{contribution_i64, sequential_reduce_i64};
use smartapps_workloads::{AccessPattern, Distribution, PatternSpec};

/// Strategy: arbitrary small access patterns in CSR form (hand-rolled
/// iteration lists, including empty iterations and repeated indices).
fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    (1usize..150, 0usize..90, 0usize..5).prop_flat_map(|(n, iters, max_refs)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..n as u32, 0..=max_refs),
            iters..=iters,
        )
        .prop_map(move |lists| AccessPattern::from_iters(n, &lists))
    })
}

/// Strategy: generator-driven patterns (the real workload shapes).
fn arb_generated() -> impl Strategy<Value = AccessPattern> {
    (
        16usize..2000,
        1usize..800,
        1usize..4,
        1u32..100,
        prop_oneof![
            Just(Distribution::Uniform),
            (1.0f64..2.0).prop_map(|s| Distribution::Zipf { s }),
            (4u32..64).prop_map(|w| Distribution::Clustered { window: w }),
        ],
        any::<u64>(),
    )
        .prop_map(|(n, iters, refs, cov_pct, dist, seed)| {
            PatternSpec {
                num_elements: n,
                iterations: iters,
                refs_per_iter: refs,
                coverage: cov_pct as f64 / 100.0,
                dist,
                seed,
            }
            .generate()
        })
}

/// K owned bodies, each scaling the base contribution differently so a
/// cross-wired output (body k feeding output j) cannot cancel out.
fn scaled_bodies(k: usize) -> Vec<Box<dyn Fn(usize, usize) -> i64 + Sync>> {
    (0..k)
        .map(|kk| {
            let scale = kk as i64 + 1;
            Box::new(move |_i: usize, r: usize| contribution_i64(r).wrapping_mul(scale))
                as Box<dyn Fn(usize, usize) -> i64 + Sync>
        })
        .collect()
}

fn check_all_schemes(pat: &AccessPattern, threads: usize, k: usize) -> Result<(), TestCaseError> {
    let insp = Inspector::analyze(pat, threads);
    let owned = scaled_bodies(k);
    let bodies: Vec<FusedBody<'_, i64>> =
        owned.iter().map(|b| &**b as FusedBody<'_, i64>).collect();
    let base = sequential_reduce_i64(pat);
    for s in Scheme::all_parallel() {
        let outs = run_fused(s, pat, &bodies, threads, Some(&insp));
        prop_assert_eq!(outs.len(), k, "{} must produce one output per body", s);
        for (kk, out) in outs.iter().enumerate() {
            let scale = kk as i64 + 1;
            let expect: Vec<i64> = base.iter().map(|v| v.wrapping_mul(scale)).collect();
            prop_assert_eq!(
                out,
                &expect,
                "{} x{} fanout {} output {}",
                s,
                threads,
                k,
                kk
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn fused_k_outputs_equal_k_oracles_on_arbitrary_patterns(
        pat in arb_pattern(),
        threads in 1usize..7,
        k in 1usize..6,
    ) {
        check_all_schemes(&pat, threads, k)?;
    }

    #[test]
    fn fused_k_outputs_equal_k_oracles_on_generated_patterns(
        pat in arb_generated(),
        threads in 1usize..5,
        k in 1usize..5,
    ) {
        check_all_schemes(&pat, threads, k)?;
    }

    #[test]
    fn fused_bodies_see_their_iteration_index(
        pat in arb_generated(),
        threads in 1usize..5,
    ) {
        // Bodies keyed by (iteration, slot): the fused traversal must
        // hand every body the same coordinates the sequential loop sees.
        let insp = Inspector::analyze(&pat, threads);
        let b0 = |i: usize, r: usize| (i as i64) * 3 + r as i64;
        let b1 = |i: usize, r: usize| (i as i64) - 2 * r as i64;
        let bodies: Vec<FusedBody<'_, i64>> = vec![&b0, &b1];
        let mut oracle0 = vec![0i64; pat.num_elements];
        let mut oracle1 = vec![0i64; pat.num_elements];
        for (i, r, x) in pat.iter_refs() {
            oracle0[x as usize] += b0(i, r);
            oracle1[x as usize] += b1(i, r);
        }
        for s in Scheme::all_parallel() {
            let outs = run_fused(s, &pat, &bodies, threads, Some(&insp));
            prop_assert_eq!(&outs[0], &oracle0, "{} output 0", s);
            prop_assert_eq!(&outs[1], &oracle1, "{} output 1", s);
        }
    }
}
