//! Decision-model validation against the Figure 3 rows.
use smartapps_reductions::{DecisionModel, Inspector, ModelInput};
use smartapps_workloads::fig3_rows;

#[test]
fn report_fig3_predictions() {
    let model = DecisionModel::default();
    let mut hits_rec = 0;
    let mut hits_best = 0;
    let rows = fig3_rows();
    for row in &rows {
        let pat = row.pattern(1234);
        let insp = Inspector::analyze(&pat, 8);
        let input = ModelInput::from_inspection(&insp, row.lw_feasible);
        let pred = model.decide(&input);
        let ours = pred.best().abbrev();
        if ours == row.recommended_paper {
            hits_rec += 1;
        }
        if ours == row.best_paper {
            hits_best += 1;
        }
        eprintln!(
            "{:8} N={:9} SP={:6.2} CON={:7.2} | paper rec={:4} best={:4} | ours={:4} ranking={:?}",
            row.app,
            row.n,
            row.sp_pct,
            row.con,
            row.recommended_paper,
            row.best_paper,
            ours,
            pred.ranking
                .iter()
                .map(|(s, c)| format!("{s}:{:.2e}", c))
                .collect::<Vec<_>>()
        );
    }
    eprintln!("matches paper-recommended: {hits_rec}/16, paper-measured-best: {hits_best}/16");
    // The paper's own decision model agreed with its measured-best scheme
    // on 12/16 rows; our model against the (ambiguously normalized)
    // published inputs must stay in that regime.
    assert!(
        hits_rec >= 9,
        "model matches only {hits_rec}/16 paper recommendations"
    );
    assert!(
        hits_best >= 9,
        "model matches only {hits_best}/16 paper measured-best"
    );
}

/// The structural crossover claims of Figure 3 must hold regardless of
/// constant tuning: within each application, growing the array (falling
/// SP/CON) moves the recommendation away from full replication.
#[test]
fn crossovers_within_each_app() {
    use smartapps_reductions::Scheme;
    let model = DecisionModel::default();
    for app in ["Irreg", "Nbf", "Moldyn"] {
        let rows: Vec<_> = fig3_rows().into_iter().filter(|r| r.app == app).collect();
        let rank_of_rep: Vec<usize> = rows
            .iter()
            .map(|row| {
                let pat = row.pattern(99);
                let insp = Inspector::analyze(&pat, 8);
                let pred = model.decide(&ModelInput::from_inspection(&insp, row.lw_feasible));
                pred.ranking
                    .iter()
                    .position(|(s, _)| *s == Scheme::Rep)
                    .unwrap()
            })
            .collect();
        // rep never improves its rank as the array grows within an app.
        for w in rank_of_rep.windows(2) {
            assert!(w[0] <= w[1], "{app}: rep rank regressed: {rank_of_rep:?}");
        }
        // First row keeps rep competitive (top 3); last row rejects it.
        assert!(rank_of_rep[0] <= 2, "{app}: {rank_of_rep:?}");
        assert!(*rank_of_rep.last().unwrap() >= 3, "{app}: {rank_of_rep:?}");
    }
}
