//! Property tests for the online calibration loop: under arbitrary
//! workload mixes whose *measured* costs systematically diverge from the
//! analytic predictions, the calibrator's corrections drive the
//! predicted/measured ratio toward 1 — and corrected rankings follow the
//! measured truth, not the mispredicted model.

use proptest::prelude::*;
use smartapps_core::calibrate::Calibrator;
use smartapps_core::toolbox::DomainKey;
use smartapps_reductions::Scheme;

/// A synthetic workload class: a functioning domain, a raw analytic
/// prediction per scheme, and the hidden truth factor by which the model
/// mispredicts each scheme (the quantity calibration must recover).
#[derive(Debug, Clone)]
struct World {
    domain: DomainKey,
    /// (scheme, raw predicted units, truth factor): measured_ns =
    /// raw × truth × machine_scale.
    schemes: Vec<(Scheme, f64, f64)>,
    /// Hidden machine scale (ns per abstract unit) — must cancel out of
    /// every cross-scheme comparison.
    machine_scale: f64,
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Rep),
        Just(Scheme::Ll),
        Just(Scheme::Sel),
        Just(Scheme::Lw),
        Just(Scheme::Hash),
    ]
}

fn arb_world() -> impl Strategy<Value = World> {
    (
        (0u8..20, 0u8..8, 0u8..11, 1u8..30),
        proptest::collection::vec((arb_scheme(), 10.0f64..1e6, 0.25f64..4.0), 2..5),
        0.01f64..100.0,
    )
        .prop_map(|(d, mut schemes, machine_scale)| {
            // One strategy entry per distinct scheme (duplicates collapse).
            schemes.sort_by(|a, b| a.0.abbrev().cmp(b.0.abbrev()));
            schemes.dedup_by_key(|s| s.0);
            World {
                domain: DomainKey {
                    dim_bucket: d.0,
                    reuse_bucket: d.1,
                    sparsity_decile: d.2,
                    mo: d.3,
                },
                schemes,
                machine_scale,
            }
        })
}

/// Deterministic ±12% noise keyed on the round, so measurements are not
/// perfectly clean but the truth is still recoverable.
fn noisy(value: f64, round: usize) -> f64 {
    let wobble = 1.0 + 0.12 * (((round * 2_654_435_761) % 1000) as f64 / 500.0 - 1.0);
    value * wobble
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-robin observations converge: every observed scheme's
    /// calibrated nanosecond estimate lands within 25% of its measured
    /// truth, regardless of the hidden machine scale.
    #[test]
    fn corrections_drive_predicted_over_measured_toward_one(world in arb_world()) {
        let mut cal = Calibrator::default();
        for round in 0..30 {
            for &(scheme, raw, truth) in &world.schemes {
                let measured = noisy(raw * truth * world.machine_scale, round);
                prop_assert!(
                    cal.observe(scheme, world.domain, false, raw, measured).is_some()
                );
            }
        }
        for &(scheme, raw, truth) in &world.schemes {
            let est = cal
                .estimate_ns(scheme, world.domain, false, raw)
                .expect("observed scheme must be estimable");
            let target = raw * truth * world.machine_scale;
            let ratio = est / target;
            prop_assert!(
                (0.75..=1.25).contains(&ratio),
                "{scheme}: estimate {est:.1} vs truth {target:.1} (ratio {ratio:.3})"
            );
        }
        prop_assert_eq!(
            cal.calibration_updates(),
            30 * world.schemes.len() as u64
        );
        prop_assert!(cal.mean_abs_error().is_finite());
    }

    /// The corrected *ranking* follows measured truth: whichever observed
    /// scheme is truly cheapest in nanoseconds ends up with the lowest
    /// corrected cost, even when the raw model ranks it last.
    #[test]
    fn corrected_ranking_follows_measured_truth(world in arb_world()) {
        let mut cal = Calibrator::default();
        for round in 0..40 {
            for &(scheme, raw, truth) in &world.schemes {
                let measured = noisy(raw * truth * world.machine_scale, round);
                cal.observe(scheme, world.domain, false, raw, measured);
            }
        }
        let truly_best = world
            .schemes
            .iter()
            .min_by(|a, b| (a.1 * a.2).total_cmp(&(b.1 * b.2)))
            .unwrap()
            .0;
        let corrected_best = world
            .schemes
            .iter()
            .map(|&(s, raw, _)| (s, raw * cal.correction(s, world.domain, false)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
        // Tolerate a photo-finish: the corrected winner's true cost must
        // be within noise (15%) of the true winner's.
        let true_ns = |s: Scheme| {
            world
                .schemes
                .iter()
                .find(|(x, ..)| *x == s)
                .map(|&(_, raw, truth)| raw * truth)
                .unwrap()
        };
        prop_assert!(
            true_ns(corrected_best) <= 1.15 * true_ns(truly_best),
            "corrected best {corrected_best} (true {:.1}) vs truly best {truly_best} (true {:.1})",
            true_ns(corrected_best),
            true_ns(truly_best)
        );
    }

    /// Per-sample errors shrink: the mean absolute error over the last
    /// third of a long observation run is no worse than over the first
    /// third (the loop converges instead of oscillating).
    #[test]
    fn error_trend_is_downward(world in arb_world()) {
        let mut cal = Calibrator::default();
        let rounds = 45;
        let mut errs = Vec::new();
        for round in 0..rounds {
            for &(scheme, raw, truth) in &world.schemes {
                let measured = noisy(raw * truth * world.machine_scale, round);
                if let Some(e) = cal.observe(scheme, world.domain, false, raw, measured) {
                    errs.push(e);
                }
            }
        }
        let third = errs.len() / 3;
        let head: f64 = errs[..third].iter().sum::<f64>() / third as f64;
        let tail: f64 = errs[errs.len() - third..].iter().sum::<f64>() / third as f64;
        prop_assert!(
            tail <= head + 0.05,
            "tail error {tail:.4} must not exceed head error {head:.4}"
        );
        // And the converged tail is small in absolute terms: within the
        // injected noise band plus slack.
        prop_assert!(tail < 0.35, "converged error too large: {tail:.4}");
    }
}
