//! Decision provenance: the structured record of *why* a job ran the
//! way it did.
//!
//! The calibrated ranking ([`Calibrator::rank`]) collapses a whole
//! decision — feature vector, analytic priors, learned corrections,
//! feasibility masks — into one winning scheme, and until now that was
//! all the runtime kept.  A [`DecisionRecord`] is the uncollapsed form:
//! the inputs the model saw, the full candidate cost table
//! (analytic-vs-corrected per scheme), which candidates were masked
//! infeasible, and the gate verdicts (fusion / simplification /
//! quarantine) the dispatcher applied after ranking.  The runtime
//! stores the latest record per job class and attaches clones to slow
//! jobs in the telemetry exemplar store; the server renders them for
//! `explain` and `slowlog` (`docs/OBSERVABILITY.md` has the field
//! catalog).
//!
//! [`Calibrator::explain`] emits the ranking part of the record; the
//! dispatcher fills in the gate verdicts and execution backend as the
//! job moves through the pipeline.

use crate::calibrate::Calibrator;
use crate::toolbox::DomainKey;
use smartapps_reductions::{ModelInput, Scheme};

/// The model inputs a decision was made from, flattened out of
/// [`ModelInput`] (and its embedded `PatternChars`) into plain numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    /// Total reduction references in the pattern.
    pub references: usize,
    /// Reduction array dimension.
    pub num_elements: usize,
    /// Distinct elements referenced.
    pub distinct: usize,
    /// Loop iteration count.
    pub iterations: usize,
    /// SP: distinct / dimension, the paper's sparsity measure.
    pub sp: f64,
    /// MO: mean distinct elements referenced per iteration.
    pub mo: f64,
    /// CON: iterations per distinct element (reuse).
    pub con: f64,
    /// Estimated cross-thread conflicting references.
    pub conflicting: usize,
    /// Estimated private-copy replication factor.
    pub replication: f64,
    /// Worker threads the decision assumed.
    pub threads: usize,
    /// Same-pattern outputs sharing the sweep (1 = unfused).
    pub fanout: usize,
}

impl FeatureVector {
    /// Flatten a model input.
    pub fn of(input: &ModelInput) -> Self {
        FeatureVector {
            references: input.chars.references,
            num_elements: input.chars.num_elements,
            distinct: input.chars.distinct,
            iterations: input.chars.iterations,
            sp: input.chars.sp,
            mo: input.chars.mo,
            con: input.chars.con,
            conflicting: input.conflicting,
            replication: input.replication,
            threads: input.threads,
            fanout: input.fanout,
        }
    }
}

/// One row of the candidate cost table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateCost {
    /// The candidate scheme.
    pub scheme: Scheme,
    /// Raw analytic model cost in abstract units (infinite when the
    /// scheme is masked for this input).
    pub analytic: f64,
    /// Analytic cost scaled by the learned correction — the value the
    /// ranking actually compared.
    pub corrected: f64,
    /// Whether the scheme was admissible at all (`lw` needs the
    /// feasibility declaration, `pclr`/`simd` need their backend and
    /// admission checks to pass).
    pub feasible: bool,
}

/// What one dispatcher gate decided for the job.
///
/// `fired` means the gate took its action (fusion admitted a fused
/// sweep, simplification rewrote the group, quarantine rejected the
/// job); `reason` is a single wire-safe token (`[a-z0-9._-]`) naming
/// why — see `docs/OBSERVABILITY.md` for the vocabulary per gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateVerdict {
    /// Whether the gate took its action.
    pub fired: bool,
    /// Single-token justification.
    pub reason: &'static str,
}

impl GateVerdict {
    /// The gate was never consulted for this job.
    pub fn not_consulted() -> Self {
        GateVerdict {
            fired: false,
            reason: "not-consulted",
        }
    }

    /// The gate fired, for `reason`.
    pub fn fired(reason: &'static str) -> Self {
        GateVerdict {
            fired: true,
            reason,
        }
    }

    /// The gate declined, for `reason`.
    pub fn declined(reason: &'static str) -> Self {
        GateVerdict {
            fired: false,
            reason,
        }
    }
}

impl Default for GateVerdict {
    fn default() -> Self {
        GateVerdict::not_consulted()
    }
}

/// The full provenance of one scheme decision (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// The job class (pattern signature) the decision applies to.
    /// [`Calibrator::explain`] leaves it 0; the runtime stamps it.
    pub signature: u64,
    /// The functioning domain the correction lookup keyed on.
    pub domain: DomainKey,
    /// The model inputs.
    pub features: FeatureVector,
    /// Candidate cost table, every scheme the model can price —
    /// including masked ones, so "why not `lw`?" has an answer.
    pub candidates: Vec<CandidateCost>,
    /// The scheme the ranking chose.
    pub winner: Scheme,
    /// Execution backend that ultimately ran the job (`software`,
    /// `simd`, `pclr`, or `scan` after simplification); `pending` until
    /// execution.
    pub backend: &'static str,
    /// Whether this decision came from a fresh ranking during
    /// exploration (`true`) rather than steady-state.
    pub explored: bool,
    /// Whether this was a periodic profile recheck.
    pub rechecked: bool,
    /// Fusion-gate verdict for the job's group.
    pub fusion: GateVerdict,
    /// Simplification verdict for the job's group.
    pub simplify: GateVerdict,
    /// Quarantine verdict (fired = the job was rejected).
    pub quarantine: GateVerdict,
    /// Times the winning scheme for this class has changed across
    /// recorded decisions (maintained by the runtime's ledger).
    pub flips: u64,
}

impl Calibrator {
    /// Emit the decision record for one ranking: the feature vector and
    /// the full candidate table (analytic prior vs corrected cost, all
    /// schemes priced, masked ones marked infeasible), with the winner
    /// chosen exactly as [`Calibrator::rank`] would.  Gate verdicts
    /// start [`GateVerdict::not_consulted`]; the dispatcher fills them
    /// in as the job traverses the pipeline.
    pub fn explain(&self, input: &ModelInput, domain: DomainKey) -> DecisionRecord {
        let mut candidates: Vec<CandidateCost> = Scheme::all_parallel()
            .into_iter()
            .chain([Scheme::Pclr, Scheme::Simd])
            .map(|scheme| {
                let analytic = self.model.predict(scheme, input);
                let corrected = self.predict(scheme, input, domain);
                CandidateCost {
                    scheme,
                    analytic,
                    corrected,
                    feasible: corrected.is_finite(),
                }
            })
            .collect();
        candidates.sort_by(|a, b| a.corrected.total_cmp(&b.corrected));
        let winner = candidates
            .iter()
            .find(|c| c.feasible)
            .map_or(Scheme::Rep, |c| c.scheme);
        DecisionRecord {
            signature: 0,
            domain,
            features: FeatureVector::of(input),
            candidates,
            winner,
            backend: "pending",
            explored: false,
            rechecked: false,
            fusion: GateVerdict::not_consulted(),
            simplify: GateVerdict::not_consulted(),
            quarantine: GateVerdict::not_consulted(),
            flips: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_reductions::DecisionModel;
    use smartapps_workloads::{Distribution, PatternChars, PatternSpec};

    fn input(pclr: bool, simd: bool) -> (ModelInput, DomainKey) {
        let pat = PatternSpec {
            num_elements: 4096,
            iterations: 20_000,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 3,
        }
        .generate();
        let chars = PatternChars::measure(&pat);
        let domain = DomainKey::of(&chars);
        let input = ModelInput {
            conflicting: ModelInput::estimate_conflicts(&chars, 4),
            replication: ModelInput::estimate_replication(&chars, 4),
            chars,
            threads: 4,
            lw_feasible: false,
            fanout: 1,
            pclr_available: pclr,
            simd_available: simd,
        };
        (input, domain)
    }

    #[test]
    fn explain_matches_rank_and_prices_every_scheme() {
        let cal = Calibrator::new(DecisionModel::default());
        let (input, domain) = input(true, true);
        let rec = cal.explain(&input, domain);
        assert_eq!(rec.candidates.len(), 7, "five software + pclr + simd");
        assert_eq!(rec.winner, cal.rank(&input, domain)[0].0);
        // Sorted by corrected cost, feasible rows finite.
        for w in rec.candidates.windows(2) {
            assert!(w[0].corrected.total_cmp(&w[1].corrected).is_le());
        }
        // An uncalibrated record has corrected == analytic everywhere.
        for c in &rec.candidates {
            if c.analytic.is_finite() {
                assert_eq!(c.analytic, c.corrected, "{:?}", c.scheme);
            }
        }
        assert_eq!(rec.features.threads, 4);
        assert_eq!(rec.features.num_elements, 4096);
        assert_eq!(rec.backend, "pending");
        assert_eq!(rec.fusion, GateVerdict::not_consulted());
    }

    #[test]
    fn masked_schemes_stay_in_the_table_as_infeasible() {
        let cal = Calibrator::default();
        let (input, domain) = input(false, false);
        let rec = cal.explain(&input, domain);
        let row = |s: Scheme| rec.candidates.iter().find(|c| c.scheme == s).unwrap();
        // lw_feasible=false and no backends: all three masked rows are
        // present, infinite, and infeasible — but still explainable.
        for s in [Scheme::Lw, Scheme::Pclr, Scheme::Simd] {
            let c = row(s);
            assert!(!c.feasible, "{s:?}");
            assert!(c.analytic.is_infinite());
        }
        assert!(rec.winner.is_software());
        assert_ne!(rec.winner, Scheme::Lw);
    }

    #[test]
    fn corrections_show_up_in_the_corrected_column_and_flip_the_winner() {
        let mut cal = Calibrator::default();
        let (input, domain) = input(false, false);
        let baseline = cal.explain(&input, domain);
        let winner = baseline.winner;
        let runner_up = baseline
            .candidates
            .iter()
            .find(|c| c.feasible && c.scheme != winner)
            .unwrap()
            .scheme;
        // Measure the analytic winner as catastrophically slow and the
        // runner-up as fast until the corrected table flips.
        for _ in 0..32 {
            cal.observe(winner, domain, false, 100.0, 60_000.0);
            cal.observe(runner_up, domain, false, 100.0, 10.0);
        }
        let rec = cal.explain(&input, domain);
        assert_eq!(rec.winner, cal.rank(&input, domain)[0].0);
        let row = |s: Scheme| rec.candidates.iter().find(|c| c.scheme == s).unwrap();
        assert!(row(winner).corrected > row(winner).analytic);
        assert!(row(runner_up).corrected < row(runner_up).analytic);
        assert_ne!(rec.winner, winner, "measured evidence must flip the table");
    }
}
