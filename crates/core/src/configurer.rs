//! The Configurer — the ToolBox tool that applies computed configurations
//! to the platform: "configure architecture, I/O, and OS systems (network,
//! cache, directories)".
//!
//! Two levels exist in this reproduction, matching the paper's "moderately
//! reconfigurable hardware" story:
//!
//! * [`HostConfigurer`] — OS-level knobs on the real host: worker thread
//!   count (the paper's "specialization of processors for computing or
//!   communication" reduced to its software-visible effect);
//! * [`SimConfigurer`] — architectural knobs on the simulated CC-NUMA:
//!   PCLR controller flavor (hardwired / programmable / off), page
//!   placement policy, combine-unit throughput.  This is what the
//!   `ConfigHardware()` call of Figure 5 talks to.
//!
//! A configurer is deliberately dumb: it applies a [`SystemConfig`] the
//! Optimizer computed and reports what changed.  Policy lives in the
//! Optimizer; mechanism lives here.

use serde::{Deserialize, Serialize};
use smartapps_sim::directory::PlacementPolicy;
use smartapps_sim::{ControllerKind, MachineConfig};

/// A target system configuration, as computed by the Optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Worker threads the run-time library should use.
    pub threads: usize,
    /// Whether reduction hardware should be engaged, and which flavor.
    pub reduction_hw: ReductionHw,
    /// Shared-page placement policy.
    pub placement: Placement,
}

/// Reduction-hardware engagement level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReductionHw {
    /// No PCLR: software reductions only.
    Off,
    /// PCLR with the hardwired directory controller.
    Hardwired,
    /// PCLR with the programmable (MAGIC-like) controller.
    Programmable,
}

/// Page-placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// First-touch (the paper's best-performing policy).
    FirstTouch,
    /// Round-robin striping.
    RoundRobin,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            threads: 8,
            reduction_hw: ReductionHw::Off,
            placement: Placement::FirstTouch,
        }
    }
}

/// What a configurer changed when applying a configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reconfiguration {
    /// Human-readable change log (empty = nothing to do).
    pub changes: Vec<String>,
}

impl Reconfiguration {
    /// True when the configuration was already in effect.
    pub fn is_noop(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Applies [`SystemConfig`]s to a platform.
pub trait Configurer {
    /// Apply `target`, returning what changed.
    fn apply(&mut self, target: &SystemConfig) -> Reconfiguration;
    /// The currently applied configuration.
    fn current(&self) -> &SystemConfig;
}

/// Host-level configurer: tracks the thread count handed to the run-time
/// library.  (Thread counts are per-loop arguments in this library, so the
/// configurer owns the value and executors read it.)
#[derive(Debug, Clone)]
pub struct HostConfigurer {
    cfg: SystemConfig,
    max_threads: usize,
}

impl HostConfigurer {
    /// Create with the host's parallelism budget.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads >= 1);
        HostConfigurer {
            cfg: SystemConfig {
                threads: max_threads,
                ..Default::default()
            },
            max_threads,
        }
    }

    /// The thread count executors should use right now.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }
}

impl Configurer for HostConfigurer {
    fn apply(&mut self, target: &SystemConfig) -> Reconfiguration {
        let mut rec = Reconfiguration::default();
        let t = target.threads.clamp(1, self.max_threads);
        if t != self.cfg.threads {
            rec.changes
                .push(format!("threads: {} -> {}", self.cfg.threads, t));
            self.cfg.threads = t;
        }
        // Host hardware knobs are not reconfigurable: note refusals.
        if target.reduction_hw != ReductionHw::Off {
            rec.changes
                .push("reduction_hw: unavailable on host (ignored)".into());
        }
        rec
    }

    fn current(&self) -> &SystemConfig {
        &self.cfg
    }
}

/// Simulated-machine configurer: rebuilds a [`MachineConfig`] according to
/// the target (this is the reconfiguration path a SmartApp exercises before
/// launching a simulated reduction loop).
#[derive(Debug, Clone)]
pub struct SimConfigurer {
    cfg: SystemConfig,
    nodes: usize,
}

impl SimConfigurer {
    /// Create for a machine of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        SimConfigurer {
            cfg: SystemConfig {
                threads: nodes,
                ..Default::default()
            },
            nodes,
        }
    }

    /// Materialize the machine configuration for the current target.
    pub fn machine_config(&self) -> MachineConfig {
        let mut m = match self.cfg.reduction_hw {
            ReductionHw::Off | ReductionHw::Hardwired => MachineConfig::table1(self.nodes),
            ReductionHw::Programmable => MachineConfig::flex(self.nodes),
        };
        debug_assert!(matches!(
            m.controller,
            ControllerKind::Hardwired | ControllerKind::Programmable
        ));
        m.nodes = self.nodes;
        m
    }

    /// Placement policy for `Machine::with_placement`.
    pub fn placement_policy(&self) -> PlacementPolicy {
        match self.cfg.placement {
            Placement::FirstTouch => PlacementPolicy::FirstTouch,
            Placement::RoundRobin => PlacementPolicy::RoundRobin,
        }
    }

    /// Whether traces should use PCLR reduction accesses.
    pub fn use_pclr(&self) -> bool {
        self.cfg.reduction_hw != ReductionHw::Off
    }
}

impl Configurer for SimConfigurer {
    fn apply(&mut self, target: &SystemConfig) -> Reconfiguration {
        let mut rec = Reconfiguration::default();
        if target.reduction_hw != self.cfg.reduction_hw {
            rec.changes.push(format!(
                "reduction_hw: {:?} -> {:?}",
                self.cfg.reduction_hw, target.reduction_hw
            ));
            self.cfg.reduction_hw = target.reduction_hw;
        }
        if target.placement != self.cfg.placement {
            rec.changes.push(format!(
                "placement: {:?} -> {:?}",
                self.cfg.placement, target.placement
            ));
            self.cfg.placement = target.placement;
        }
        let t = target.threads.clamp(1, self.nodes);
        if t != self.cfg.threads {
            rec.changes
                .push(format!("threads: {} -> {}", self.cfg.threads, t));
            self.cfg.threads = t;
        }
        rec
    }

    fn current(&self) -> &SystemConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_configurer_clamps_and_logs() {
        let mut c = HostConfigurer::new(8);
        assert_eq!(c.threads(), 8);
        let rec = c.apply(&SystemConfig {
            threads: 4,
            ..Default::default()
        });
        assert_eq!(rec.changes, vec!["threads: 8 -> 4"]);
        assert_eq!(c.threads(), 4);
        // Clamped to the budget.
        c.apply(&SystemConfig {
            threads: 100,
            ..Default::default()
        });
        assert_eq!(c.threads(), 8);
        // Re-applying is a no-op.
        let rec = c.apply(&SystemConfig {
            threads: 8,
            ..Default::default()
        });
        assert!(rec.is_noop());
    }

    #[test]
    fn host_refuses_hardware_knobs() {
        let mut c = HostConfigurer::new(4);
        let rec = c.apply(&SystemConfig {
            threads: 4,
            reduction_hw: ReductionHw::Hardwired,
            placement: Placement::FirstTouch,
        });
        assert!(!rec.is_noop());
        assert!(rec.changes[0].contains("unavailable"));
    }

    #[test]
    fn sim_configurer_materializes_machines() {
        let mut c = SimConfigurer::new(16);
        assert!(!c.use_pclr());
        c.apply(&SystemConfig {
            threads: 16,
            reduction_hw: ReductionHw::Programmable,
            placement: Placement::RoundRobin,
        });
        assert!(c.use_pclr());
        let m = c.machine_config();
        assert_eq!(m.controller, ControllerKind::Programmable);
        assert_eq!(m.nodes, 16);
        assert_eq!(c.placement_policy(), PlacementPolicy::RoundRobin);

        c.apply(&SystemConfig {
            threads: 16,
            reduction_hw: ReductionHw::Hardwired,
            placement: Placement::FirstTouch,
        });
        let m = c.machine_config();
        assert_eq!(m.controller, ControllerKind::Hardwired);
        assert_eq!(c.placement_policy(), PlacementPolicy::FirstTouch);
    }

    #[test]
    fn sim_reconfiguration_log_is_complete() {
        let mut c = SimConfigurer::new(8);
        let rec = c.apply(&SystemConfig {
            threads: 4,
            reduction_hw: ReductionHw::Hardwired,
            placement: Placement::RoundRobin,
        });
        assert_eq!(rec.changes.len(), 3, "{:?}", rec.changes);
        // Same target again: silent.
        let rec = c.apply(&c.current().clone());
        assert!(rec.is_noop());
    }
}
