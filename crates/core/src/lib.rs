//! # smartapps-core — the SmartApps adaptive runtime
//!
//! The application-centric runtime of the paper's Section 2: the compiler
//! embeds most run-time services *into* the application together with a
//! performance-optimizing feedback loop, so that the executable's final
//! form "takes shape only at run-time, after all input data has been
//! analyzed".
//!
//! The pieces, mapped to the paper's architecture (Figures 1 and 2):
//!
//! * [`mod@recognize`] — the static-compiler stage: reduction recognition over
//!   a loop IR (what Polaris does for the original system);
//! * [`multiversion`] — the packaged multi-version code: recognized loop +
//!   every library variant behind an adaptive dispatcher, completed at run
//!   time once the input data is known;
//! * [`adaptive`] — the run-time feedback loop for reduction loops:
//!   inspect → decide → execute → monitor → adapt;
//! * [`toolbox`] — the ToolBox: performance databases, predictor with
//!   learned corrections, evaluator and the deviation-to-adaptation
//!   policy (small adaption = tuning, large adaption = phase change);
//! * [`calibrate`] — the online calibration loop: per-`(Scheme,
//!   DomainKey)` EWMA corrections with confidence weighting that ground
//!   the analytic model in measured cost samples (see `docs/MODEL.md`);
//! * [`provenance`] — decision provenance: [`DecisionRecord`]s carrying
//!   the feature vector, the analytic-vs-corrected candidate cost table,
//!   feasibility masks, and gate verdicts for every ranked decision
//!   (served over the wire as `explain`, `docs/OBSERVABILITY.md`);
//! * [`configurer`] — the Configurer: applies computed system
//!   configurations to the host (thread counts) or to the simulated
//!   machine (PCLR controller flavor, page placement);
//! * [`monitor`] — continuous performance monitoring and phase-transition
//!   detection.
//!
//! ## Example: a self-optimizing reduction loop
//!
//! ```
//! use smartapps_core::adaptive::AdaptiveReduction;
//! use smartapps_workloads::{PatternSpec, Distribution, contribution};
//!
//! let pat = PatternSpec {
//!     num_elements: 2048,
//!     iterations: 10_000,
//!     refs_per_iter: 2,
//!     coverage: 1.0,
//!     dist: Distribution::Uniform,
//!     seed: 5,
//! }
//! .generate();
//! let mut smart = AdaptiveReduction::new(/*loop_id=*/ 1, /*threads=*/ 2, false);
//! let (w, log) = smart.execute(&pat, &|_i, r| contribution(r));
//! assert_eq!(w.len(), 2048);
//! assert!(log.characterized); // first invocation pays the inspector
//! let (_w, log2) = smart.execute(&pat, &|_i, r| contribution(r));
//! assert!(!log2.characterized); // stable pattern: decision reused
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod calibrate;
pub mod configurer;
pub mod monitor;
pub mod multiversion;
pub mod provenance;
pub mod recognize;
pub mod toolbox;

pub use adaptive::{AdaptiveReduction, InvocationLog, SchemePrior};
pub use calibrate::{Calibrator, CorrLevel, Correction};
pub use configurer::{Configurer, HostConfigurer, SimConfigurer, SystemConfig};
pub use monitor::{Monitor, PhaseDetector};
pub use multiversion::{CompiledReduction, Inputs};
pub use provenance::{CandidateCost, DecisionRecord, FeatureVector, GateVerdict};
pub use recognize::{distribute_by_operator, recognize, LoopNest, Recognition, ReductionInfo};
pub use toolbox::{Adaptation, Deviation, DomainKey, Optimizer, PerformanceDb, Predictor};
