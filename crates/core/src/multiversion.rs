//! Multi-version code: the packaged output of the static compiler stage.
//!
//! "This adaptive parallel algorithm substitution can be implemented
//! either through multi-version code (library calls) as is currently done,
//! or through recompilation."  A [`CompiledReduction`] is the multi-version
//! form: the recognized reduction statement (from [`mod@crate::recognize`])
//! bundled with every parallel variant of the library behind an adaptive
//! dispatcher, plus an interpreter for the contribution expression so the
//! "unfinished optimization" can be completed once the input data (index
//! arrays) is known at run time.

use crate::adaptive::{AdaptiveReduction, InvocationLog};
use crate::recognize::{recognize, ArrayId, Expr, LoopNest, Recognition, ReductionInfo, Rejection};
use smartapps_workloads::pattern::AccessPattern;

/// Runtime bindings for the loop's input arrays (read-only operands; the
/// reduction array itself is materialized by the executor).
#[derive(Debug, Default)]
pub struct Inputs<'a> {
    arrays: Vec<(ArrayId, &'a [f64])>,
}

impl<'a> Inputs<'a> {
    /// Bind `array` to `data`.
    pub fn bind(mut self, array: ArrayId, data: &'a [f64]) -> Self {
        self.arrays.push((array, data));
        self
    }

    fn get(&self, array: ArrayId) -> &'a [f64] {
        self.arrays
            .iter()
            .find(|(a, _)| *a == array)
            .map(|(_, d)| *d)
            .unwrap_or_else(|| panic!("unbound array {array}"))
    }
}

/// Evaluate an IR expression at iteration `i` with bound inputs.
pub fn eval(e: &Expr, i: usize, inputs: &Inputs<'_>) -> f64 {
    match e {
        Expr::Const(c) => *c,
        Expr::LoopVar => i as f64,
        Expr::Load { array, index } => {
            let idx = eval(index, i, inputs);
            inputs.get(*array)[idx as usize]
        }
        Expr::Bin { op, lhs, rhs } => {
            let a = eval(lhs, i, inputs);
            let b = eval(rhs, i, inputs);
            match op {
                crate::recognize::BinOp::Add => a + b,
                crate::recognize::BinOp::Mul => a * b,
                crate::recognize::BinOp::Max => a.max(b),
                crate::recognize::BinOp::Min => a.min(b),
                crate::recognize::BinOp::Sub => a - b,
                crate::recognize::BinOp::Div => a / b,
            }
        }
    }
}

/// The compiled, multi-version form of a recognized reduction loop.
pub struct CompiledReduction {
    /// The recognized reduction statement.
    pub info: ReductionInfo,
    /// The adaptive dispatcher over the scheme library.
    pub adaptive: AdaptiveReduction,
}

impl CompiledReduction {
    /// "Compile" a loop nest: recognize its (single) reduction statement
    /// and package the multi-version executor.  Fails with the recognizer's
    /// rejection if the loop is not a reduction.
    pub fn compile(
        l: &LoopNest,
        loop_id: u64,
        threads: usize,
        lw_feasible: bool,
    ) -> Result<Self, Rejection> {
        let recs = recognize(l);
        for r in recs {
            if let Recognition::Reduction(info) = r {
                return Ok(CompiledReduction {
                    info,
                    adaptive: AdaptiveReduction::new(loop_id, threads, lw_feasible),
                });
            }
        }
        // Return the first rejection for diagnostics.
        match recognize(l).into_iter().next() {
            Some(Recognition::Rejected(rej)) => Err(rej),
            _ => Err(Rejection::NotSelfUpdate),
        }
    }

    /// Run one invocation: evaluate the target index per iteration to
    /// build the access pattern, then execute adaptively.
    ///
    /// `n_elements` is the reduction array dimension; `n_iters` the trip
    /// count; `inputs` binds every array the loop reads.
    pub fn run(
        &mut self,
        n_elements: usize,
        n_iters: usize,
        inputs: &Inputs<'_>,
    ) -> (Vec<f64>, InvocationLog) {
        // Finish the "unfinished optimization": materialize the reference
        // pattern from the now-known input data.
        let mut lists = Vec::with_capacity(n_iters);
        for i in 0..n_iters {
            let idx = eval(&self.info.target_index, i, inputs) as usize;
            assert!(idx < n_elements, "iteration {i} indexes out of bounds");
            lists.push(vec![idx as u32]);
        }
        let pat = AccessPattern::from_iters(n_elements, &lists);
        let contribution = &self.info.contribution;
        let body = |i: usize, _r: usize| eval(contribution, i, inputs);
        self.adaptive.execute(&pat, &body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognize::build::{histogram_update, indirect_load};

    const W: ArrayId = 0;
    const X: ArrayId = 1;
    const F: ArrayId = 2;

    #[test]
    fn end_to_end_compile_and_run() {
        // for i { w[x[i]] += f[x[i]] }
        let l = LoopNest {
            stmts: vec![histogram_update(W, X, indirect_load(F, X))],
        };
        let mut c = CompiledReduction::compile(&l, 42, 4, false).expect("recognized");
        let n = 64;
        let iters = 10_000;
        let x: Vec<f64> = (0..iters).map(|i| ((i * 17) % n) as f64).collect();
        let f: Vec<f64> = (0..n).map(|e| e as f64 * 0.25).collect();
        let inputs = Inputs::default().bind(X, &x).bind(F, &f);
        let (w, log) = c.run(n, iters, &inputs);
        // Oracle.
        let mut expect = vec![0.0f64; n];
        for &xi in x.iter().take(iters) {
            let idx = xi as usize;
            expect[idx] += f[idx];
        }
        for (e, (a, b)) in expect.iter().zip(w.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "elem {e}: {a} vs {b}"
            );
        }
        assert!(log.characterized);
    }

    #[test]
    fn non_reduction_fails_compilation() {
        let l = LoopNest {
            stmts: vec![crate::recognize::Stmt {
                target_array: W,
                target_index: Expr::LoopVar,
                value: Expr::Load {
                    array: F,
                    index: Box::new(Expr::LoopVar),
                },
            }],
        };
        assert!(CompiledReduction::compile(&l, 1, 2, false).is_err());
    }

    #[test]
    fn expression_interpreter() {
        let x = [3.0, 1.0];
        let inputs = Inputs::default().bind(X, &x);
        // x[i] * 2 + i
        let e = Expr::Bin {
            op: crate::recognize::BinOp::Add,
            lhs: Box::new(Expr::Bin {
                op: crate::recognize::BinOp::Mul,
                lhs: Box::new(Expr::Load {
                    array: X,
                    index: Box::new(Expr::LoopVar),
                }),
                rhs: Box::new(Expr::Const(2.0)),
            }),
            rhs: Box::new(Expr::LoopVar),
        };
        assert_eq!(eval(&e, 0, &inputs), 6.0);
        assert_eq!(eval(&e, 1, &inputs), 3.0);
    }

    #[test]
    #[should_panic(expected = "unbound array")]
    fn unbound_array_panics() {
        let inputs = Inputs::default();
        let e = Expr::Load {
            array: 9,
            index: Box::new(Expr::Const(0.0)),
        };
        eval(&e, 0, &inputs);
    }
}
