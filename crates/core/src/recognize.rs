//! Reduction recognition over a small loop IR — the static-compiler stage
//! of a SmartApp.
//!
//! "For certain simple algorithms, which can be automatically recognized,
//! e.g., reductions, the compiler will insert code that can substitute the
//! sequential version with a parallel equivalent."  A *reduction variable*
//! is one whose only use in the loop is `x = x ⊗ exp` with `⊗` associative
//! and commutative and `x` not occurring in `exp` or anywhere else in the
//! loop (Section 4, footnote).  This module implements that check over an
//! expression-tree IR: the recognizer marks each update statement as a
//! valid reduction or explains why it is not.

use serde::{Deserialize, Serialize};

/// Array identifier in the loop IR.
pub type ArrayId = u32;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (associative, commutative).
    Add,
    /// Multiplication (associative, commutative).
    Mul,
    /// Maximum (associative, commutative).
    Max,
    /// Minimum (associative, commutative).
    Min,
    /// Subtraction (NOT commutative — not a reduction operator).
    Sub,
    /// Division (NOT commutative — not a reduction operator).
    Div,
}

impl BinOp {
    /// Operators admissible in reductions.
    pub fn is_reduction_op(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Max | BinOp::Min)
    }
}

/// Expressions of the loop IR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal.
    Const(f64),
    /// The loop induction variable.
    LoopVar,
    /// A load `A[index]`.
    Load {
        /// Array loaded from.
        array: ArrayId,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Does the expression reference `array` anywhere?
    pub fn references(&self, array: ArrayId) -> bool {
        match self {
            Expr::Const(_) | Expr::LoopVar => false,
            Expr::Load { array: a, index } => *a == array || index.references(array),
            Expr::Bin { lhs, rhs, .. } => lhs.references(array) || rhs.references(array),
        }
    }

    /// All arrays referenced by the expression.
    pub fn arrays(&self, out: &mut Vec<ArrayId>) {
        match self {
            Expr::Const(_) | Expr::LoopVar => {}
            Expr::Load { array, index } => {
                out.push(*array);
                index.arrays(out);
            }
            Expr::Bin { lhs, rhs, .. } => {
                lhs.arrays(out);
                rhs.arrays(out);
            }
        }
    }
}

/// An assignment statement `target_array[target_index] = value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// Array assigned to.
    pub target_array: ArrayId,
    /// Index expression of the target.
    pub target_index: Expr,
    /// Right-hand side.
    pub value: Expr,
}

/// A countable loop body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Body statements, in program order.
    pub stmts: Vec<Stmt>,
}

/// A recognized reduction statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionInfo {
    /// Statement index within the loop body.
    pub stmt: usize,
    /// The reduction array.
    pub array: ArrayId,
    /// The (associative, commutative) operator.
    pub op: BinOp,
    /// The target index expression of the update.
    pub target_index: Expr,
    /// The contribution expression (`exp` in `x = x ⊗ exp`).
    pub contribution: Expr,
}

/// Why a statement failed reduction recognition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rejection {
    /// The RHS is not `target ⊗ exp` at the top level.
    NotSelfUpdate,
    /// The operator is not associative/commutative.
    NonCommutativeOp,
    /// The contribution expression references the reduction array.
    ContributionUsesArray,
    /// The array is read or written by another statement in the loop.
    UsedElsewhere,
    /// Target and self-reference use different index expressions.
    IndexMismatch,
}

/// Result of recognizing one statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Recognition {
    /// A valid reduction.
    Reduction(ReductionInfo),
    /// Not a reduction, with the first reason found.
    Rejected(Rejection),
}

/// Recognize reduction statements in a loop body.
pub fn recognize(l: &LoopNest) -> Vec<Recognition> {
    (0..l.stmts.len()).map(|i| recognize_stmt(l, i)).collect()
}

fn recognize_stmt(l: &LoopNest, i: usize) -> Recognition {
    let s = &l.stmts[i];
    let a = s.target_array;
    // Shape: value = Bin { op, lhs, rhs } where one side is
    // Load { a, index == target_index }.
    let Expr::Bin { op, lhs, rhs } = &s.value else {
        return Recognition::Rejected(Rejection::NotSelfUpdate);
    };
    let self_load = |e: &Expr| -> bool { matches!(e, Expr::Load { array, .. } if *array == a) };
    let (self_side, contrib) = if self_load(lhs) {
        (lhs, rhs)
    } else if self_load(rhs) && matches!(op, BinOp::Add | BinOp::Mul | BinOp::Max | BinOp::Min) {
        (rhs, lhs)
    } else {
        return Recognition::Rejected(Rejection::NotSelfUpdate);
    };
    if !op.is_reduction_op() {
        return Recognition::Rejected(Rejection::NonCommutativeOp);
    }
    // The self-reference must use the same index expression.
    if let Expr::Load { index, .. } = &**self_side {
        if **index != s.target_index {
            return Recognition::Rejected(Rejection::IndexMismatch);
        }
    }
    if contrib.references(a) {
        return Recognition::Rejected(Rejection::ContributionUsesArray);
    }
    // The array must not appear anywhere else in the loop.
    for (j, other) in l.stmts.iter().enumerate() {
        if j == i {
            continue;
        }
        if other.target_array == a || other.target_index.references(a) || other.value.references(a)
        {
            return Recognition::Rejected(Rejection::UsedElsewhere);
        }
    }
    Recognition::Reduction(ReductionInfo {
        stmt: i,
        array: a,
        op: *op,
        target_index: s.target_index.clone(),
        contribution: (**contrib).clone(),
    })
}

/// Distribute a loop containing several reduction operators into one loop
/// per operator (Section 5.1.4: "any loop that performs several types of
/// reduction operation must be distributed into multiple loops, so that
/// each loop performs only one type of reduction operation" — the PCLR
/// hardware is configured with a single operator per parallel section).
///
/// Distribution is only legal when every statement is a recognized
/// reduction (reductions touch disjoint arrays by the recognizer's
/// used-elsewhere rule, so any statement ordering is equivalent); loops
/// with unrecognized statements are returned unchanged.
pub fn distribute_by_operator(l: &LoopNest) -> Vec<LoopNest> {
    let recs = recognize(l);
    let mut infos = Vec::with_capacity(recs.len());
    for r in recs {
        match r {
            Recognition::Reduction(info) => infos.push(info),
            Recognition::Rejected(_) => return vec![l.clone()],
        }
    }
    // Group statements by operator, preserving program order within groups.
    let mut groups: Vec<(BinOp, Vec<usize>)> = Vec::new();
    for info in &infos {
        match groups.iter_mut().find(|(op, _)| *op == info.op) {
            Some((_, stmts)) => stmts.push(info.stmt),
            None => groups.push((info.op, vec![info.stmt])),
        }
    }
    groups
        .into_iter()
        .map(|(_, stmts)| LoopNest {
            stmts: stmts.into_iter().map(|i| l.stmts[i].clone()).collect(),
        })
        .collect()
}

/// Convenience constructors for IR tests and examples.
pub mod build {
    use super::*;

    /// `A[x[i]]` — an indirect load through an index array.
    pub fn indirect_load(data: ArrayId, idx: ArrayId) -> Expr {
        Expr::Load {
            array: data,
            index: Box::new(Expr::Load {
                array: idx,
                index: Box::new(Expr::LoopVar),
            }),
        }
    }

    /// `w[x[i]] = w[x[i]] + contribution` — the canonical histogram update.
    pub fn histogram_update(w: ArrayId, x: ArrayId, contribution: Expr) -> Stmt {
        let index = Expr::Load {
            array: x,
            index: Box::new(Expr::LoopVar),
        };
        Stmt {
            target_array: w,
            target_index: index.clone(),
            value: Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Load {
                    array: w,
                    index: Box::new(index),
                }),
                rhs: Box::new(contribution),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    const W: ArrayId = 0;
    const X: ArrayId = 1;
    const F: ArrayId = 2;

    #[test]
    fn canonical_histogram_reduction_recognized() {
        let l = LoopNest {
            stmts: vec![histogram_update(W, X, indirect_load(F, X))],
        };
        let r = recognize(&l);
        assert_eq!(r.len(), 1);
        match &r[0] {
            Recognition::Reduction(info) => {
                assert_eq!(info.array, W);
                assert_eq!(info.op, BinOp::Add);
            }
            other => panic!("expected reduction, got {other:?}"),
        }
    }

    #[test]
    fn commuted_operands_recognized() {
        // w[i] = f[i] + w[i]
        let idx = Expr::LoopVar;
        let l = LoopNest {
            stmts: vec![Stmt {
                target_array: W,
                target_index: idx.clone(),
                value: Expr::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::Load {
                        array: F,
                        index: Box::new(Expr::LoopVar),
                    }),
                    rhs: Box::new(Expr::Load {
                        array: W,
                        index: Box::new(idx),
                    }),
                },
            }],
        };
        assert!(matches!(recognize(&l)[0], Recognition::Reduction(_)));
    }

    #[test]
    fn subtraction_rejected() {
        // w[i] = w[i] - f[i] : Sub is not commutative.
        let idx = Expr::LoopVar;
        let l = LoopNest {
            stmts: vec![Stmt {
                target_array: W,
                target_index: idx.clone(),
                value: Expr::Bin {
                    op: BinOp::Sub,
                    lhs: Box::new(Expr::Load {
                        array: W,
                        index: Box::new(idx),
                    }),
                    rhs: Box::new(Expr::Const(1.0)),
                },
            }],
        };
        assert_eq!(
            recognize(&l)[0],
            Recognition::Rejected(Rejection::NonCommutativeOp)
        );
    }

    #[test]
    fn contribution_using_array_rejected() {
        // w[i] = w[i] + w[j]: the contribution reads the reduction array.
        let idx = Expr::LoopVar;
        let l = LoopNest {
            stmts: vec![Stmt {
                target_array: W,
                target_index: idx.clone(),
                value: Expr::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::Load {
                        array: W,
                        index: Box::new(idx),
                    }),
                    rhs: Box::new(Expr::Load {
                        array: W,
                        index: Box::new(Expr::Const(0.0)),
                    }),
                },
            }],
        };
        assert_eq!(
            recognize(&l)[0],
            Recognition::Rejected(Rejection::ContributionUsesArray)
        );
    }

    #[test]
    fn array_used_elsewhere_rejected() {
        let l = LoopNest {
            stmts: vec![
                histogram_update(W, X, Expr::Const(1.0)),
                // Another statement reads w.
                Stmt {
                    target_array: F,
                    target_index: Expr::LoopVar,
                    value: Expr::Load {
                        array: W,
                        index: Box::new(Expr::LoopVar),
                    },
                },
            ],
        };
        assert_eq!(
            recognize(&l)[0],
            Recognition::Rejected(Rejection::UsedElsewhere)
        );
    }

    #[test]
    fn index_mismatch_rejected() {
        // w[i] = w[0] + 1 : self-load uses a different index.
        let l = LoopNest {
            stmts: vec![Stmt {
                target_array: W,
                target_index: Expr::LoopVar,
                value: Expr::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::Load {
                        array: W,
                        index: Box::new(Expr::Const(0.0)),
                    }),
                    rhs: Box::new(Expr::Const(1.0)),
                },
            }],
        };
        assert_eq!(
            recognize(&l)[0],
            Recognition::Rejected(Rejection::IndexMismatch)
        );
    }

    #[test]
    fn max_reduction_recognized() {
        let idx = Expr::LoopVar;
        let l = LoopNest {
            stmts: vec![Stmt {
                target_array: W,
                target_index: idx.clone(),
                value: Expr::Bin {
                    op: BinOp::Max,
                    lhs: Box::new(Expr::Load {
                        array: W,
                        index: Box::new(idx),
                    }),
                    rhs: Box::new(Expr::Load {
                        array: F,
                        index: Box::new(Expr::LoopVar),
                    }),
                },
            }],
        };
        match &recognize(&l)[0] {
            Recognition::Reduction(info) => assert_eq!(info.op, BinOp::Max),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plain_copy_rejected() {
        let l = LoopNest {
            stmts: vec![Stmt {
                target_array: W,
                target_index: Expr::LoopVar,
                value: Expr::Load {
                    array: F,
                    index: Box::new(Expr::LoopVar),
                },
            }],
        };
        assert_eq!(
            recognize(&l)[0],
            Recognition::Rejected(Rejection::NotSelfUpdate)
        );
    }

    #[test]
    fn distribution_splits_by_operator() {
        // Add-reduction on W, Max-reduction on F: PCLR needs two loops.
        let max_stmt = Stmt {
            target_array: F,
            target_index: Expr::LoopVar,
            value: Expr::Bin {
                op: BinOp::Max,
                lhs: Box::new(Expr::Load {
                    array: F,
                    index: Box::new(Expr::LoopVar),
                }),
                rhs: Box::new(Expr::Const(1.0)),
            },
        };
        let l = LoopNest {
            stmts: vec![
                histogram_update(W, X, Expr::Const(1.0)),
                max_stmt.clone(),
                histogram_update(3, X, Expr::Const(2.0)),
            ],
        };
        let loops = distribute_by_operator(&l);
        assert_eq!(loops.len(), 2, "Add group and Max group");
        assert_eq!(loops[0].stmts.len(), 2, "both Add reductions together");
        assert_eq!(loops[1].stmts, vec![max_stmt]);
    }

    #[test]
    fn distribution_keeps_single_op_loops_whole() {
        let l = LoopNest {
            stmts: vec![
                histogram_update(W, X, Expr::Const(1.0)),
                histogram_update(F, X, Expr::Const(2.0)),
            ],
        };
        let loops = distribute_by_operator(&l);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].stmts.len(), 2);
    }

    #[test]
    fn distribution_refuses_unrecognized_statements() {
        let l = LoopNest {
            stmts: vec![
                histogram_update(W, X, Expr::Const(1.0)),
                Stmt {
                    target_array: F,
                    target_index: Expr::LoopVar,
                    value: Expr::Const(0.0), // plain store: not a reduction
                },
            ],
        };
        let loops = distribute_by_operator(&l);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0], l, "unrecognized statements block distribution");
    }

    #[test]
    fn two_reductions_on_different_arrays_both_recognized() {
        let l = LoopNest {
            stmts: vec![
                histogram_update(W, X, Expr::Const(1.0)),
                histogram_update(F, X, Expr::Const(2.0)),
            ],
        };
        let r = recognize(&l);
        assert!(matches!(r[0], Recognition::Reduction(_)));
        assert!(matches!(r[1], Recognition::Reduction(_)));
    }
}
