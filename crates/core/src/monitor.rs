//! Performance monitoring and phase-transition detection: the SmartApp
//! "continuously monitors performance and adapts as necessary".

use serde::{Deserialize, Serialize};
use smartapps_reductions::Scheme;
use std::time::Duration;

/// One monitored invocation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Observation {
    /// Invocation counter.
    pub invocation: u64,
    /// Scheme that ran.
    pub scheme: Scheme,
    /// Wall time.
    pub elapsed: Duration,
}

/// A rolling performance monitor with an exponential moving average per
/// scheme.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Monitor {
    history: Vec<Observation>,
    ema_secs: Option<f64>,
    alpha: f64,
}

impl Monitor {
    /// Create a monitor with smoothing factor `alpha` in (0,1].
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Monitor {
            history: Vec::new(),
            ema_secs: None,
            alpha,
        }
    }

    /// Record an invocation.
    pub fn record(&mut self, scheme: Scheme, elapsed: Duration) {
        let inv = self.history.len() as u64;
        self.history.push(Observation {
            invocation: inv,
            scheme,
            elapsed,
        });
        let secs = elapsed.as_secs_f64();
        self.ema_secs = Some(match self.ema_secs {
            None => secs,
            Some(e) => (1.0 - self.alpha) * e + self.alpha * secs,
        });
    }

    /// Smoothed invocation time.
    pub fn ema(&self) -> Option<Duration> {
        self.ema_secs.map(Duration::from_secs_f64)
    }

    /// Ratio of the latest observation to the smoothed history (values far
    /// from 1.0 indicate a slowdown/speedup event).
    pub fn latest_vs_ema(&self) -> Option<f64> {
        let last = self.history.last()?.elapsed.as_secs_f64();
        let ema = self.ema_secs?;
        if ema > 0.0 {
            Some(last / ema)
        } else {
            None
        }
    }

    /// Full observation history.
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Number of recorded invocations.
    pub fn invocations(&self) -> usize {
        self.history.len()
    }
}

/// Detects phase transitions in a stream of scalar signatures (e.g., the
/// loop's reference drift or its invocation time): a transition is
/// declared when the signature stays beyond the threshold for `patience`
/// consecutive observations — one-off noise does not trigger adaptation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseDetector {
    threshold: f64,
    patience: usize,
    strikes: usize,
    phases: u64,
}

impl PhaseDetector {
    /// `threshold` is the relative-change trigger; `patience` the number
    /// of consecutive exceedances required.
    pub fn new(threshold: f64, patience: usize) -> Self {
        assert!(patience >= 1);
        PhaseDetector {
            threshold,
            patience,
            strikes: 0,
            phases: 0,
        }
    }

    /// Feed a relative-change observation (0.0 = unchanged); returns true
    /// when a phase transition is declared (and resets).
    pub fn observe(&mut self, rel_change: f64) -> bool {
        if rel_change > self.threshold {
            self.strikes += 1;
            if self.strikes >= self.patience {
                self.strikes = 0;
                self.phases += 1;
                return true;
            }
        } else {
            self.strikes = 0;
        }
        false
    }

    /// Number of phase transitions declared so far.
    pub fn phases(&self) -> u64 {
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_smooths_and_flags_outliers() {
        let mut m = Monitor::new(0.5);
        for _ in 0..10 {
            m.record(Scheme::Rep, Duration::from_millis(10));
        }
        assert!((m.ema().unwrap().as_millis() as i64 - 10).abs() <= 1);
        m.record(Scheme::Rep, Duration::from_millis(40));
        let r = m.latest_vs_ema().unwrap();
        assert!(r > 1.4, "a 4x spike must stand out: {r}");
        assert_eq!(m.invocations(), 11);
        assert_eq!(m.history()[0].invocation, 0);
    }

    #[test]
    fn phase_detector_needs_patience() {
        let mut d = PhaseDetector::new(0.5, 3);
        assert!(!d.observe(1.0));
        assert!(!d.observe(1.0));
        assert!(d.observe(1.0), "third consecutive exceedance fires");
        assert_eq!(d.phases(), 1);
        // Noise resets the strike count.
        assert!(!d.observe(1.0));
        assert!(!d.observe(0.1));
        assert!(!d.observe(1.0));
        assert!(!d.observe(1.0));
        assert!(d.observe(1.0));
        assert_eq!(d.phases(), 2);
    }

    #[test]
    fn quiet_signal_never_fires() {
        let mut d = PhaseDetector::new(0.3, 2);
        for _ in 0..100 {
            assert!(!d.observe(0.05));
        }
        assert_eq!(d.phases(), 0);
    }
}
