//! Online cost-model calibration: the measure→correct loop.
//!
//! The paper's central claim is that the decision model is *corrected by
//! measured performance*, not fixed analytic constants.  The
//! [`Predictor`](crate::toolbox::Predictor) started that with one global
//! correction factor per scheme; this module finishes it: a
//! [`Calibrator`] maintains per-`(Scheme, DomainKey, fused)` estimates of
//! **measured nanoseconds per abstract model unit**, blended
//! coarse-to-fine with confidence weights, so that
//!
//! * a scheme the analytic model systematically under-costs accumulates a
//!   correction that pushes it down the ranking until its *measured* cost
//!   justifies its rank;
//! * a scheme that has never executed keeps its analytic prediction
//!   (correction 1.0) — the model remains the prior, measurements the
//!   posterior;
//! * fused (multi-output) executions calibrate separately from split
//!   (single-output) ones, with the split estimate serving as the prior
//!   for the fused one — this is what lets a service take `ll`-regime
//!   fusion once measurements support it, instead of trusting the
//!   analytically pessimistic fanout constants forever.
//!
//! The estimates live in three levels, mixed coarse→fine by each level's
//! confidence (a saturating function of its sample count):
//!
//! ```text
//! Global                       one ns-per-unit scale for the machine
//!   └─ Scheme(s, fused)        per-scheme systematic model error
//!        └─ Class(s, d, fused) per-functioning-domain refinement
//! ```
//!
//! Corrections are *ratios* (`chain(s, d, fused) / global`), so the
//! machine scale cancels when two schemes are compared — exactly what a
//! ranking needs.  The state is plain data ([`Calibrator::export`] /
//! [`Calibrator::seed`]) so the runtime's `ProfileStore` can persist it
//! across restarts as `corr` records.
//!
//! See `docs/MODEL.md` for the full data-flow reference.

use crate::toolbox::DomainKey;
use smartapps_reductions::{DecisionModel, ModelInput, Scheme};
use std::collections::HashMap;

/// EWMA weight of a new sample once an estimate is warm (early samples
/// use `1/n` averaging so the estimate does not anchor on the first one).
const EWMA_ALPHA: f64 = 0.2;

/// Sample count at which a level's confidence reaches 0.5.
const CONF_HALF: f64 = 4.0;

/// Corrections are clamped into `[1/CORR_CLAMP, CORR_CLAMP]` so a wild
/// measurement (page fault, preemption) cannot eject a scheme from every
/// future ranking.
const CORR_CLAMP: f64 = 64.0;

/// One learned estimate: an EWMA of measured nanoseconds per abstract
/// model unit, plus the sample count behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// EWMA of `measured_ns / predicted_units`.
    pub ns_per_unit: f64,
    /// Samples folded into the EWMA.
    pub updates: u64,
}

impl Correction {
    /// A fresh estimate seeded with one value (used when loading persisted
    /// calibration state).
    pub fn seeded(ns_per_unit: f64, updates: u64) -> Self {
        Correction {
            ns_per_unit,
            updates,
        }
    }

    /// Fold one sample in: `1/n` averaging while cold, EWMA once warm.
    pub fn observe(&mut self, sample: f64) {
        if self.updates == 0 {
            self.ns_per_unit = sample;
        } else {
            let a = (1.0 / (self.updates as f64 + 1.0)).max(EWMA_ALPHA);
            self.ns_per_unit += a * (sample - self.ns_per_unit);
        }
        self.updates += 1;
    }

    /// How much weight this estimate carries against its coarser prior:
    /// `n / (n + 4)`, i.e. 0 with no samples, 0.5 after 4, →1 as samples
    /// accumulate.
    pub fn confidence(&self) -> f64 {
        let n = self.updates as f64;
        n / (n + CONF_HALF)
    }
}

/// The granularity a [`Correction`] applies at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrLevel {
    /// The machine-wide nanoseconds-per-unit scale (all schemes, all
    /// domains).
    Global,
    /// One scheme's systematic model error, split (`false`) or fused
    /// (`true`) execution.
    Scheme(Scheme, bool),
    /// One scheme within one functioning domain, split or fused.
    Class(Scheme, DomainKey, bool),
}

/// The calibrator: an analytic [`DecisionModel`] plus the learned
/// correction state that turns raw model units into measured-grounded
/// rankings.
///
/// # Example
///
/// ```
/// use smartapps_core::calibrate::Calibrator;
/// use smartapps_core::toolbox::DomainKey;
/// use smartapps_reductions::Scheme;
///
/// let mut cal = Calibrator::default();
/// let d = DomainKey { dim_bucket: 12, reuse_bucket: 4, sparsity_decile: 10, mo: 2 };
/// // The model predicted 100 units; the run measured 400 ns — and hash
/// // keeps measuring 4 ns/unit while rep measures 1 ns/unit.
/// for _ in 0..16 {
///     cal.observe(Scheme::Hash, d, false, 100.0, 400.0);
///     cal.observe(Scheme::Rep, d, false, 100.0, 100.0);
/// }
/// // Relative correction: hash is pushed up, rep down, ratios preserved.
/// let ratio = cal.correction(Scheme::Hash, d, false) / cal.correction(Scheme::Rep, d, false);
/// assert!((ratio - 4.0).abs() < 0.5, "{ratio}");
/// // An unmeasured scheme keeps its analytic prediction (ratio ~1 vs global).
/// assert!(cal.correction(Scheme::Sel, d, false) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// The underlying analytic model (the prior every correction refines).
    pub model: DecisionModel,
    levels: HashMap<CorrLevel, Correction>,
    updates: u64,
    abs_err_sum: f64,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator::new(DecisionModel::default())
    }
}

impl Calibrator {
    /// Build around an analytic model.
    pub fn new(model: DecisionModel) -> Self {
        Calibrator {
            model,
            levels: HashMap::new(),
            updates: 0,
            abs_err_sum: 0.0,
        }
    }

    /// Chained coarse→fine ns-per-unit estimate for a scheme/domain, or
    /// `None` before any sample exists.  Each finer level pulls the
    /// estimate toward itself by its confidence; for fused queries the
    /// split levels act as priors (per-scheme implementation error is
    /// largely shared between the two execution shapes).
    fn chain(&self, scheme: Scheme, domain: DomainKey, fused: bool) -> Option<f64> {
        let mut est = self.levels.get(&CorrLevel::Global)?.ns_per_unit;
        let mix = |level: CorrLevel, est: &mut f64| {
            if let Some(c) = self.levels.get(&level) {
                *est += c.confidence() * (c.ns_per_unit - *est);
            }
        };
        mix(CorrLevel::Scheme(scheme, false), &mut est);
        if fused {
            mix(CorrLevel::Scheme(scheme, true), &mut est);
        }
        mix(CorrLevel::Class(scheme, domain, false), &mut est);
        if fused {
            mix(CorrLevel::Class(scheme, domain, true), &mut est);
        }
        Some(est)
    }

    /// The multiplicative correction applied to the analytic prediction of
    /// `scheme` in `domain`: the chained estimate relative to the global
    /// scale, clamped, `1.0` while uncalibrated.  Because every scheme is
    /// divided by the same global scale, *comparisons* between schemes
    /// depend only on their measured relative cost.
    pub fn correction(&self, scheme: Scheme, domain: DomainKey, fused: bool) -> f64 {
        let Some(global) = self.levels.get(&CorrLevel::Global) else {
            return 1.0;
        };
        if global.ns_per_unit <= 0.0 {
            return 1.0;
        }
        match self.chain(scheme, domain, fused) {
            Some(est) => (est / global.ns_per_unit).clamp(1.0 / CORR_CLAMP, CORR_CLAMP),
            None => 1.0,
        }
    }

    /// Corrected cost of one scheme (abstract units scaled by the learned
    /// correction; infinite predictions stay infinite).
    pub fn predict(&self, scheme: Scheme, input: &ModelInput, domain: DomainKey) -> f64 {
        let raw = self.model.predict(scheme, input);
        if !raw.is_finite() {
            return raw;
        }
        raw * self.correction(scheme, domain, input.fanout > 1)
    }

    /// Full nanosecond estimate for one execution, when calibrated:
    /// chained ns-per-unit × raw predicted units.
    pub fn estimate_ns(
        &self,
        scheme: Scheme,
        domain: DomainKey,
        fused: bool,
        predicted_units: f64,
    ) -> Option<f64> {
        if !predicted_units.is_finite() || predicted_units <= 0.0 {
            return None;
        }
        self.chain(scheme, domain, fused)
            .map(|est| est * predicted_units)
    }

    /// Rank schemes by corrected cost, best first.  The hardware
    /// [`Scheme::Pclr`] joins only when `input.pclr_available`, the
    /// vectorized [`Scheme::Simd`] only when `input.simd_available`
    /// (mirroring [`DecisionModel::decide`]).
    pub fn rank(&self, input: &ModelInput, domain: DomainKey) -> Vec<(Scheme, f64)> {
        let mut v: Vec<(Scheme, f64)> = Scheme::all_parallel()
            .into_iter()
            .map(|s| (s, self.predict(s, input, domain)))
            .collect();
        if input.pclr_available {
            v.push((Scheme::Pclr, self.predict(Scheme::Pclr, input, domain)));
        }
        if input.simd_available {
            v.push((Scheme::Simd, self.predict(Scheme::Simd, input, domain)));
        }
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    /// Rank a fused batch of `fanout` same-pattern jobs (the corrected
    /// sibling of `Predictor::rank_fused`).
    pub fn rank_fused(
        &self,
        input: &ModelInput,
        fanout: usize,
        domain: DomainKey,
    ) -> Vec<(Scheme, f64)> {
        self.rank(&input.clone().with_fanout(fanout), domain)
    }

    /// The confidence of the finest calibration level available for a
    /// scheme in a domain (class level if present, else the per-scheme
    /// level; 0.0 with no samples).
    pub fn confidence(&self, scheme: Scheme, domain: DomainKey, fused: bool) -> f64 {
        let conf = |level: CorrLevel| self.levels.get(&level).map_or(0.0, |c| c.confidence());
        conf(CorrLevel::Class(scheme, domain, fused)).max(conf(CorrLevel::Scheme(scheme, fused)))
    }

    /// The confidence of this exact `(scheme, domain, fused)` class
    /// level alone — 0.0 until the scheme has been measured *in this
    /// functioning domain*.  The runtime's exploration gate keys on this
    /// (not [`confidence`](Calibrator::confidence)) so a scheme measured
    /// elsewhere still gets sampled when a new domain appears.
    pub fn class_confidence(&self, scheme: Scheme, domain: DomainKey, fused: bool) -> f64 {
        self.levels
            .get(&CorrLevel::Class(scheme, domain, fused))
            .map_or(0.0, |c| c.confidence())
    }

    /// Whether measured evidence backs predictions for a scheme in (or
    /// near) a domain — the bar the runtime's fusion gate and profile
    /// recheck require before *acting* on a corrected prediction that
    /// contradicts the analytic prior.
    pub fn evidence(&self, scheme: Scheme, domain: DomainKey, fused: bool) -> bool {
        self.confidence(scheme, domain, fused) >= 0.5
    }

    /// Whether measured *fused* evidence exists for a scheme in (or near)
    /// a domain: the fusion gate requires this before trusting a
    /// corrected fused prediction for schemes outside the analytically
    /// validated `hash` regime.
    pub fn fused_evidence(&self, scheme: Scheme, domain: DomainKey) -> bool {
        self.evidence(scheme, domain, true)
    }

    /// Fold one measured execution in: `predicted_units` is the **raw**
    /// analytic prediction at decision time, `measured_ns` the backend's
    /// cost sample (wall nanoseconds for software, simulated-machine
    /// nanoseconds for PCLR).  Returns the relative error of the
    /// *pre-update* calibrated estimate (`|est/measured − 1|`, `0.0` for
    /// the scale-setting first sample), or `None` when the sample is
    /// invalid and ignored.
    pub fn observe(
        &mut self,
        scheme: Scheme,
        domain: DomainKey,
        fused: bool,
        predicted_units: f64,
        measured_ns: f64,
    ) -> Option<f64> {
        if !(predicted_units.is_finite() && measured_ns.is_finite())
            || predicted_units <= 0.0
            || measured_ns <= 0.0
        {
            return None;
        }
        let err = self
            .estimate_ns(scheme, domain, fused, predicted_units)
            .map_or(0.0, |est| (est / measured_ns - 1.0).abs());
        let sample = measured_ns / predicted_units;
        for level in [
            CorrLevel::Global,
            CorrLevel::Scheme(scheme, fused),
            CorrLevel::Class(scheme, domain, fused),
        ] {
            self.levels
                .entry(level)
                .or_insert(Correction {
                    ns_per_unit: 0.0,
                    updates: 0,
                })
                .observe(sample);
        }
        self.updates += 1;
        self.abs_err_sum += err;
        Some(err)
    }

    /// Samples accepted since construction (or seeding).
    pub fn calibration_updates(&self) -> u64 {
        self.updates
    }

    /// Mean absolute relative prediction error over accepted samples
    /// (each measured against the calibrated estimate *before* its own
    /// update) — the number that trends toward 0 as the loop converges.
    pub fn mean_abs_error(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.abs_err_sum / self.updates as f64
        }
    }

    /// Export the learned state for persistence.
    pub fn export(&self) -> impl Iterator<Item = (CorrLevel, Correction)> + '_ {
        self.levels.iter().map(|(k, v)| (*k, *v))
    }

    /// Seed one level from persisted state.  An existing level keeps
    /// whichever estimate carries more samples.
    pub fn seed(&mut self, level: CorrLevel, corr: Correction) {
        if !corr.ns_per_unit.is_finite() || corr.ns_per_unit <= 0.0 {
            return;
        }
        match self.levels.get_mut(&level) {
            Some(mine) if mine.updates >= corr.updates => {}
            _ => {
                self.levels.insert(level, corr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::{Distribution, PatternChars, PatternSpec};

    fn domain() -> DomainKey {
        DomainKey {
            dim_bucket: 12,
            reuse_bucket: 4,
            sparsity_decile: 10,
            mo: 2,
        }
    }

    #[test]
    fn uncalibrated_is_the_identity() {
        let cal = Calibrator::default();
        let d = domain();
        assert_eq!(cal.correction(Scheme::Rep, d, false), 1.0);
        assert!(cal.estimate_ns(Scheme::Rep, d, false, 100.0).is_none());
        assert_eq!(cal.calibration_updates(), 0);
        assert_eq!(cal.mean_abs_error(), 0.0);
    }

    #[test]
    fn uncalibrated_rank_matches_the_model() {
        let cal = Calibrator::default();
        let pat = PatternSpec {
            num_elements: 4096,
            iterations: 20_000,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 3,
        }
        .generate();
        let chars = PatternChars::measure(&pat);
        let conflicting = ModelInput::estimate_conflicts(&chars, 4);
        let replication = ModelInput::estimate_replication(&chars, 4);
        let input = ModelInput {
            chars: chars.clone(),
            conflicting,
            replication,
            threads: 4,
            lw_feasible: false,
            fanout: 1,
            pclr_available: false,
            simd_available: false,
        };
        let d = DomainKey::of(&chars);
        let ranked = cal.rank(&input, d);
        let analytic = cal.model.decide(&input);
        assert_eq!(
            ranked.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            analytic.ranking.iter().map(|(s, _)| *s).collect::<Vec<_>>()
        );
        // The backend-gated schemes join only when the input reports them.
        assert!(ranked.iter().all(|(s, _)| s.is_software()));
        let gated = cal.rank(&input.clone().with_pclr(true).with_simd(true), d);
        assert_eq!(gated.len(), ranked.len() + 2);
        assert!(gated.iter().any(|(s, _)| *s == Scheme::Simd));
        assert!(gated.iter().any(|(s, _)| *s == Scheme::Pclr));
    }

    #[test]
    fn relative_corrections_reflect_measured_truth() {
        let mut cal = Calibrator::default();
        let d = domain();
        // The model claims both schemes cost 100 units; reality says hash
        // takes 4x what rep takes.
        for _ in 0..32 {
            assert!(cal.observe(Scheme::Hash, d, false, 100.0, 800.0).is_some());
            assert!(cal.observe(Scheme::Rep, d, false, 100.0, 200.0).is_some());
        }
        let ratio = cal.correction(Scheme::Hash, d, false) / cal.correction(Scheme::Rep, d, false);
        assert!((ratio - 4.0).abs() < 0.6, "ratio {ratio}");
        // Error of a converged estimate is small.
        let est = cal.estimate_ns(Scheme::Rep, d, false, 100.0).unwrap();
        assert!((est - 200.0).abs() / 200.0 < 0.15, "est {est}");
        assert_eq!(cal.calibration_updates(), 64);
    }

    #[test]
    fn invalid_samples_are_rejected() {
        let mut cal = Calibrator::default();
        let d = domain();
        assert!(cal.observe(Scheme::Rep, d, false, 0.0, 100.0).is_none());
        assert!(cal.observe(Scheme::Rep, d, false, 100.0, 0.0).is_none());
        assert!(cal
            .observe(Scheme::Rep, d, false, f64::INFINITY, 100.0)
            .is_none());
        assert!(cal
            .observe(Scheme::Rep, d, false, 100.0, f64::NAN)
            .is_none());
        assert_eq!(cal.calibration_updates(), 0);
    }

    #[test]
    fn split_estimate_is_the_fused_prior() {
        let mut cal = Calibrator::default();
        let d = domain();
        // Only split samples exist: the fused query inherits them.
        for _ in 0..16 {
            cal.observe(Scheme::Ll, d, false, 100.0, 300.0);
        }
        let split = cal.estimate_ns(Scheme::Ll, d, false, 100.0).unwrap();
        let fused = cal.estimate_ns(Scheme::Ll, d, true, 100.0).unwrap();
        assert!((split - fused).abs() < 1e-9);
        // But fused evidence is still absent until fused samples arrive.
        assert!(!cal.fused_evidence(Scheme::Ll, d));
        for _ in 0..8 {
            cal.observe(Scheme::Ll, d, true, 100.0, 150.0);
        }
        assert!(cal.fused_evidence(Scheme::Ll, d));
        let fused = cal.estimate_ns(Scheme::Ll, d, true, 100.0).unwrap();
        assert!(fused < split, "fused samples must refine the prior");
    }

    #[test]
    fn corrections_flip_a_ranking_toward_measured_truth() {
        // A model that lies: hash predicted at 100 units, rep at 200 —
        // but measurements say hash really costs 4x rep.
        let mut cal = Calibrator::default();
        let d = domain();
        for _ in 0..24 {
            cal.observe(Scheme::Hash, d, false, 100.0, 4000.0);
            cal.observe(Scheme::Rep, d, false, 200.0, 2000.0);
        }
        let hash = 100.0 * cal.correction(Scheme::Hash, d, false);
        let rep = 200.0 * cal.correction(Scheme::Rep, d, false);
        assert!(
            rep < hash,
            "corrected ranking must follow measurements: rep {rep} vs hash {hash}"
        );
    }

    #[test]
    fn export_seed_round_trip() {
        let mut cal = Calibrator::default();
        let d = domain();
        for _ in 0..8 {
            cal.observe(Scheme::Sel, d, false, 50.0, 700.0);
            cal.observe(Scheme::Sel, d, true, 80.0, 900.0);
        }
        let mut fresh = Calibrator::default();
        for (level, corr) in cal.export() {
            fresh.seed(level, corr);
        }
        assert!(
            (fresh.correction(Scheme::Sel, d, true) - cal.correction(Scheme::Sel, d, true)).abs()
                < 1e-12
        );
        assert!(fresh.fused_evidence(Scheme::Sel, d));
        // Seeding with fewer samples never clobbers a warmer estimate.
        let warm = fresh.correction(Scheme::Sel, d, false);
        fresh.seed(
            CorrLevel::Class(Scheme::Sel, d, false),
            Correction::seeded(1e9, 1),
        );
        assert!((fresh.correction(Scheme::Sel, d, false) - warm).abs() < 1e-12);
        // Invalid seeds are ignored.
        fresh.seed(CorrLevel::Global, Correction::seeded(f64::NAN, 1000));
        assert!(fresh.correction(Scheme::Sel, d, false).is_finite());
    }

    #[test]
    fn wild_measurements_are_clamped() {
        let mut cal = Calibrator::default();
        let d = domain();
        cal.observe(Scheme::Rep, d, false, 100.0, 100.0);
        // One absurd hash sample cannot push the correction past the clamp.
        cal.observe(Scheme::Hash, d, false, 1.0, 1e12);
        let c = cal.correction(Scheme::Hash, d, false);
        assert!(c <= CORR_CLAMP, "{c}");
    }

    #[test]
    fn mean_error_decreases_as_estimates_converge() {
        let mut cal = Calibrator::default();
        let d = domain();
        let mut early = 0.0;
        let mut late = 0.0;
        for i in 0..40 {
            let err = cal
                .observe(Scheme::Ll, d, false, 100.0, 500.0)
                .unwrap_or(0.0);
            if i < 5 {
                early += err;
            } else if i >= 35 {
                late += err;
            }
        }
        assert!(
            late <= early,
            "late errors {late} must not exceed early {early}"
        );
        assert!(cal.mean_abs_error() < 0.5);
    }
}
