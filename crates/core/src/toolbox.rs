//! The ToolBox (Figure 2): performance evaluator, predictor, optimizer and
//! configurer, backed by application- and system-specific databases.
//!
//! * the **Performance Evaluator** measures performance and compares it
//!   with predicted values;
//! * the **Predictor** predicts performance from models plus statistical
//!   information from previous runs;
//! * the **Optimizer** computes an "optimal" configuration;
//! * the **Configurer** applies it.
//!
//! The databases here hold per-(loop, functioning-domain) samples of
//! measured scheme performance; the predictor corrects the analytic
//! decision model with measured/predicted ratios learned online.

use serde::{Deserialize, Serialize};
use smartapps_reductions::{DecisionModel, ModelInput, Scheme};
use std::collections::HashMap;
use std::time::Duration;

/// A coarse digest of a pattern's characteristics: the "functioning
/// domain" an application instance falls into.  Instances in the same
/// domain share optimization decisions and database entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DomainKey {
    /// log2 bucket of the array dimension.
    pub dim_bucket: u8,
    /// log2 bucket of references per element (contention).
    pub reuse_bucket: u8,
    /// Sparsity decile (0-10).
    pub sparsity_decile: u8,
    /// Rounded mobility (distinct elements per iteration).
    pub mo: u8,
}

impl DomainKey {
    /// Pack the four buckets into one `u32`
    /// (`dim | reuse | sparsity | mo`, big-endian by field) — the stable
    /// encoding the runtime's profile store uses for `corr` records.
    ///
    /// ```
    /// use smartapps_core::toolbox::DomainKey;
    /// let d = DomainKey { dim_bucket: 12, reuse_bucket: 4, sparsity_decile: 10, mo: 2 };
    /// assert_eq!(DomainKey::unpack(d.pack()), d);
    /// assert_eq!(d.pack(), 0x0c040a02);
    /// ```
    pub fn pack(&self) -> u32 {
        u32::from_be_bytes([
            self.dim_bucket,
            self.reuse_bucket,
            self.sparsity_decile,
            self.mo,
        ])
    }

    /// Inverse of [`pack`](DomainKey::pack).
    pub fn unpack(bits: u32) -> Self {
        let [dim_bucket, reuse_bucket, sparsity_decile, mo] = bits.to_be_bytes();
        DomainKey {
            dim_bucket,
            reuse_bucket,
            sparsity_decile,
            mo,
        }
    }

    /// Compute the domain of a characterization.
    pub fn of(chars: &smartapps_workloads::PatternChars) -> Self {
        let log2b = |x: f64| -> u8 {
            if x <= 1.0 {
                0
            } else {
                (x.log2().round() as i64).clamp(0, 255) as u8
            }
        };
        DomainKey {
            dim_bucket: log2b(chars.num_elements as f64),
            reuse_bucket: log2b(if chars.distinct > 0 {
                chars.references as f64 / chars.distinct as f64
            } else {
                0.0
            }),
            sparsity_decile: (chars.sp * 10.0).round().clamp(0.0, 10.0) as u8,
            mo: chars.mo.round().clamp(0.0, 255.0) as u8,
        }
    }
}

/// One measured execution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sample {
    /// Scheme executed.
    pub scheme: Scheme,
    /// Wall time.
    pub elapsed: Duration,
    /// Model-predicted cost at decision time (abstract units).
    pub predicted: f64,
}

/// The application-specific performance database.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PerformanceDb {
    samples: HashMap<(u64, DomainKey), Vec<Sample>>,
}

impl PerformanceDb {
    /// Record a sample for `loop_id` in `domain`.
    pub fn record(&mut self, loop_id: u64, domain: DomainKey, sample: Sample) {
        self.samples
            .entry((loop_id, domain))
            .or_default()
            .push(sample);
    }

    /// All samples for a loop/domain.
    pub fn samples(&self, loop_id: u64, domain: DomainKey) -> &[Sample] {
        self.samples
            .get(&(loop_id, domain))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate every `((loop_id, domain), samples)` entry — the export
    /// surface the runtime's cross-run profile store persists through.
    pub fn entries(&self) -> impl Iterator<Item = ((u64, DomainKey), &[Sample])> + '_ {
        self.samples.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Best measured scheme for a loop/domain, if any.
    pub fn best_scheme(&self, loop_id: u64, domain: DomainKey) -> Option<Scheme> {
        self.samples(loop_id, domain)
            .iter()
            .min_by_key(|s| s.elapsed)
            .map(|s| s.scheme)
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.values().map(Vec::len).sum()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// The Predictor: analytic model costs, corrected per scheme by the
/// measured/predicted ratio learned from the database (exponential moving
/// average).
#[derive(Debug, Clone)]
pub struct Predictor {
    /// Underlying analytic model.
    pub model: DecisionModel,
    correction: HashMap<Scheme, f64>,
    ema_alpha: f64,
}

impl Default for Predictor {
    fn default() -> Self {
        Predictor {
            model: DecisionModel::default(),
            correction: HashMap::new(),
            ema_alpha: 0.3,
        }
    }
}

impl Predictor {
    /// Predicted cost of a scheme, with learned correction.
    pub fn predict(&self, scheme: Scheme, input: &ModelInput) -> f64 {
        let base = self.model.predict(scheme, input);
        base * self.correction.get(&scheme).copied().unwrap_or(1.0)
    }

    /// Rank schemes by corrected predicted cost (best first).
    pub fn rank(&self, input: &ModelInput) -> Vec<(Scheme, f64)> {
        let mut v: Vec<(Scheme, f64)> = Scheme::all_parallel()
            .into_iter()
            .map(|s| (s, self.predict(s, input)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    /// Rank schemes for a *fused batch* of `fanout` same-pattern jobs
    /// executed as one traversal (see `smartapps_reductions::fused`).  The
    /// best scheme for one job is not always the best for K fused jobs:
    /// K-fold private storage pushes replicating schemes out of cache
    /// while traversal-bound schemes amortize, so the decision must be
    /// re-ranked at the batch's actual fanout.
    ///
    /// ```
    /// use smartapps_core::toolbox::Predictor;
    /// use smartapps_reductions::{Inspector, ModelInput};
    /// use smartapps_workloads::{Distribution, PatternSpec};
    ///
    /// let pat = PatternSpec {
    ///     num_elements: 4096, iterations: 8192, refs_per_iter: 2,
    ///     coverage: 1.0, dist: Distribution::Uniform, seed: 3,
    /// }.generate();
    /// let input = ModelInput::from_inspection(&Inspector::analyze(&pat, 4), false);
    /// let p = Predictor::default();
    /// // At fanout 1 the fused ranking is exactly the plain ranking ...
    /// assert_eq!(p.rank_fused(&input, 1), p.rank(&input));
    /// // ... and a fused batch costs more than one job, less than K jobs.
    /// let (best, one) = p.rank(&input)[0];
    /// let (_, fused) = *p.rank_fused(&input, 4).iter().find(|(s, _)| *s == best).unwrap();
    /// assert!(fused > one && fused < 4.0 * one);
    /// ```
    pub fn rank_fused(&self, input: &ModelInput, fanout: usize) -> Vec<(Scheme, f64)> {
        self.rank(&input.clone().with_fanout(fanout))
    }

    /// Learn from a measurement: fold `measured_units / predicted` into the
    /// scheme's correction factor.  `measured_units` must be in the same
    /// abstract scale as predictions — callers normalize wall time by a
    /// per-machine calibration constant.  (The runtime's
    /// [`Calibrator`](crate::calibrate::Calibrator) does that
    /// normalization automatically and refines corrections per
    /// [`DomainKey`]; this predictor is the single-process flavor the
    /// adaptive loop embeds.)
    ///
    /// Invalid samples (non-finite, non-positive) are ignored:
    ///
    /// ```
    /// use smartapps_core::toolbox::Predictor;
    /// use smartapps_reductions::Scheme;
    ///
    /// let mut p = Predictor::default();
    /// // rep keeps measuring 2x its prediction: the correction converges
    /// // toward the measured/predicted ratio.
    /// for _ in 0..20 {
    ///     p.learn(Scheme::Rep, 100.0, 200.0);
    /// }
    /// assert!(p.correction(Scheme::Rep) > 1.8);
    /// p.learn(Scheme::Rep, 0.0, 100.0);      // ignored
    /// p.learn(Scheme::Rep, 100.0, f64::NAN); // ignored
    /// assert!(p.correction(Scheme::Rep).is_finite());
    /// ```
    pub fn learn(&mut self, scheme: Scheme, predicted: f64, measured_units: f64) {
        if !(predicted.is_finite() && measured_units.is_finite())
            || predicted <= 0.0
            || measured_units <= 0.0
        {
            return;
        }
        let ratio = measured_units / predicted;
        let c = self.correction.entry(scheme).or_insert(1.0);
        *c = (1.0 - self.ema_alpha) * *c + self.ema_alpha * ratio;
    }

    /// Current correction factor for a scheme (`1.0` until
    /// [`learn`](Predictor::learn) has folded in a measurement).
    ///
    /// ```
    /// use smartapps_core::toolbox::Predictor;
    /// use smartapps_reductions::Scheme;
    ///
    /// let mut p = Predictor::default();
    /// assert_eq!(p.correction(Scheme::Hash), 1.0);
    /// p.learn(Scheme::Hash, 100.0, 400.0);
    /// assert!(p.correction(Scheme::Hash) > 1.0); // measured slower than predicted
    /// ```
    pub fn correction(&self, scheme: Scheme) -> f64 {
        self.correction.get(&scheme).copied().unwrap_or(1.0)
    }
}

/// The Evaluator: deviation of measured performance from predicted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deviation {
    /// measured / predicted (1.0 = on target).
    pub ratio: f64,
}

impl Deviation {
    /// Compute the deviation.
    pub fn evaluate(predicted: f64, measured: f64) -> Deviation {
        Deviation {
            ratio: if predicted > 0.0 {
                measured / predicted
            } else {
                f64::INFINITY
            },
        }
    }

    /// Magnitude of the deviation (symmetric: 2x too slow == 2x too fast).
    pub fn magnitude(&self) -> f64 {
        if self.ratio <= 0.0 || !self.ratio.is_finite() {
            return f64::INFINITY;
        }
        self.ratio.max(1.0 / self.ratio)
    }
}

/// Actions the Optimizer can request, in increasing order of disruption —
/// the "nested multi-level adaptive feedback loop that ... based on the
/// magnitude of deviation from expected performance, compensates with
/// various actions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Adaptation {
    /// Performance on target: keep everything.
    Keep,
    /// Small deviation: run-time tuning without re-decision (e.g., refresh
    /// scheduling feedback).
    Tune,
    /// Moderate deviation: re-run the decision with learned corrections
    /// (possibly switching scheme) — "small adaption (tuning)".
    Redecide,
    /// Large deviation or phase change: re-characterize the pattern from
    /// scratch — "large adaption (failure, phase change)".
    Recharacterize,
}

/// The Optimizer: maps deviation magnitude to an adaptation level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Optimizer {
    /// Deviation magnitude below which nothing happens.
    pub keep_below: f64,
    /// Below this, light tuning only.
    pub tune_below: f64,
    /// Below this, re-decide; above, re-characterize.
    pub redecide_below: f64,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            keep_below: 1.15,
            tune_below: 1.4,
            redecide_below: 2.5,
        }
    }
}

impl Optimizer {
    /// Choose the adaptation for a deviation.
    ///
    /// The policy is asymmetric: running *slower* than predicted escalates
    /// up to re-characterization, but running *faster* than predicted is
    /// good news — at most the calibration gets tuned.  (A symmetric
    /// policy would discard a decision precisely when the warmed-up code
    /// starts beating the cold-start calibration.)
    pub fn adapt(&self, dev: Deviation) -> Adaptation {
        if !dev.ratio.is_finite() {
            return Adaptation::Recharacterize;
        }
        if dev.ratio <= 1.0 {
            return if 1.0 / dev.ratio.max(1e-300) < self.tune_below {
                Adaptation::Keep
            } else {
                Adaptation::Tune
            };
        }
        let m = dev.ratio;
        if m < self.keep_below {
            Adaptation::Keep
        } else if m < self.tune_below {
            Adaptation::Tune
        } else if m < self.redecide_below {
            Adaptation::Redecide
        } else {
            Adaptation::Recharacterize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::{Distribution, PatternChars, PatternSpec};

    fn chars() -> PatternChars {
        PatternChars::measure(
            &PatternSpec {
                num_elements: 1024,
                iterations: 4096,
                refs_per_iter: 2,
                coverage: 1.0,
                dist: Distribution::Uniform,
                seed: 1,
            }
            .generate(),
        )
    }

    #[test]
    fn domain_key_buckets_similar_instances_together() {
        let a = DomainKey::of(&chars());
        let b = DomainKey::of(&chars());
        assert_eq!(a, b);
        // A 64x larger array lands in a different domain.
        let big = PatternChars::measure(
            &PatternSpec {
                num_elements: 65536,
                iterations: 4096,
                refs_per_iter: 2,
                coverage: 1.0,
                dist: Distribution::Uniform,
                seed: 1,
            }
            .generate(),
        );
        assert_ne!(DomainKey::of(&big), a);
    }

    #[test]
    fn db_records_and_ranks() {
        let mut db = PerformanceDb::default();
        let d = DomainKey::of(&chars());
        assert!(db.is_empty());
        db.record(
            7,
            d,
            Sample {
                scheme: Scheme::Rep,
                elapsed: Duration::from_millis(10),
                predicted: 100.0,
            },
        );
        db.record(
            7,
            d,
            Sample {
                scheme: Scheme::Sel,
                elapsed: Duration::from_millis(6),
                predicted: 80.0,
            },
        );
        assert_eq!(db.len(), 2);
        assert_eq!(db.best_scheme(7, d), Some(Scheme::Sel));
        assert_eq!(db.best_scheme(8, d), None);
        assert_eq!(db.samples(7, d).len(), 2);
    }

    #[test]
    fn predictor_learns_corrections() {
        let mut p = Predictor::default();
        assert_eq!(p.correction(Scheme::Rep), 1.0);
        // rep consistently measures 2x its prediction.
        for _ in 0..20 {
            p.learn(Scheme::Rep, 100.0, 200.0);
        }
        assert!(
            p.correction(Scheme::Rep) > 1.8,
            "{}",
            p.correction(Scheme::Rep)
        );
        // Invalid measurements are ignored.
        p.learn(Scheme::Rep, 0.0, 100.0);
        p.learn(Scheme::Rep, 100.0, f64::NAN);
        assert!(p.correction(Scheme::Rep).is_finite());
    }

    #[test]
    fn rank_fused_is_rank_at_fanout() {
        use smartapps_reductions::{Inspector, ModelInput};
        let pat = PatternSpec {
            num_elements: 4096,
            iterations: 8192,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 3,
        }
        .generate();
        let insp = Inspector::analyze(&pat, 4);
        let input = ModelInput::from_inspection(&insp, false);
        let p = Predictor::default();
        // fanout == 1 must agree with the plain ranking...
        assert_eq!(p.rank_fused(&input, 1), p.rank(&input));
        // ...and a fused batch must cost more in absolute units but less
        // than K independent runs for the winning scheme.
        let (best, one_cost) = p.rank(&input)[0];
        let fused_cost = p
            .rank_fused(&input, 6)
            .iter()
            .find(|(s, _)| *s == best)
            .map(|(_, c)| *c)
            .unwrap();
        assert!(fused_cost > one_cost);
        assert!(fused_cost < 6.0 * one_cost);
    }

    #[test]
    fn deviation_magnitude_is_symmetric() {
        let slow = Deviation::evaluate(100.0, 200.0);
        let fast = Deviation::evaluate(200.0, 100.0);
        assert!((slow.magnitude() - 2.0).abs() < 1e-12);
        assert!((fast.magnitude() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn optimizer_escalates_with_slowdowns_only() {
        let o = Optimizer::default();
        assert_eq!(o.adapt(Deviation { ratio: 1.0 }), Adaptation::Keep);
        assert_eq!(o.adapt(Deviation { ratio: 1.3 }), Adaptation::Tune);
        assert_eq!(o.adapt(Deviation { ratio: 2.0 }), Adaptation::Redecide);
        assert_eq!(
            o.adapt(Deviation { ratio: 5.0 }),
            Adaptation::Recharacterize
        );
        // Faster than predicted: never more than calibration tuning.
        assert_eq!(o.adapt(Deviation { ratio: 0.9 }), Adaptation::Keep);
        assert_eq!(o.adapt(Deviation { ratio: 0.2 }), Adaptation::Tune);
        assert_eq!(
            o.adapt(Deviation {
                ratio: f64::INFINITY
            }),
            Adaptation::Recharacterize
        );
    }
}
