//! The adaptive reduction runtime: inspect → decide → execute → monitor →
//! adapt, the instantiation of Figure 1's feedback loop for reduction
//! loops.
//!
//! Every invocation of a managed loop goes through:
//!
//! 1. **drift check** — a cheap characterization of a sample of the
//!    iteration space, compared against the pattern the current decision
//!    was made for; sustained drift (a phase change of a dynamic code)
//!    triggers re-characterization;
//! 2. **decision** — if no decision is current, a full inspector pass and
//!    the (correction-learned) predictor pick a scheme;
//! 3. **execution** — the chosen scheme runs;
//! 4. **evaluation** — measured time is compared against prediction; the
//!    optimizer escalates (keep / tune / re-decide / re-characterize)
//!    according to the deviation magnitude.

use crate::monitor::{Monitor, PhaseDetector};
use crate::toolbox::{
    Adaptation, Deviation, DomainKey, Optimizer, PerformanceDb, Predictor, Sample,
};
use smartapps_reductions::{
    run_scheme_on, Inspection, Inspector, ModelInput, Scheme, SpawnExecutor, SpmdExecutor,
};
use smartapps_workloads::pattern::AccessPattern;
use smartapps_workloads::{drift, PatternChars};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happened during one adaptive invocation (for logs and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationLog {
    /// Scheme executed.
    pub scheme: Scheme,
    /// Whether a full (re-)characterization ran this invocation.
    pub characterized: bool,
    /// Measured drift of the sampled pattern vs the decision's pattern.
    pub drift: f64,
    /// Wall time of the scheme execution.
    pub elapsed: Duration,
    /// Adaptation decided after evaluation.
    pub adaptation: Adaptation,
}

struct Decided {
    scheme: Scheme,
    inspection: Inspection,
    sample_chars: PatternChars,
    predicted: f64,
    domain: DomainKey,
}

/// The adaptive executor for one reduction loop site.
pub struct AdaptiveReduction {
    /// Loop site identifier (stable across invocations).
    pub loop_id: u64,
    /// Worker threads.
    pub threads: usize,
    /// Whether owner-computes is legal for this loop.
    pub lw_feasible: bool,
    /// Predictor (analytic model + learned corrections).
    pub predictor: Predictor,
    /// Deviation → adaptation policy.
    pub optimizer: Optimizer,
    /// Measured-sample database.
    pub db: PerformanceDb,
    /// Rolling performance monitor.
    pub monitor: Monitor,
    /// Iterations sampled for the cheap drift check.
    pub sample_iters: usize,
    drift_detector: PhaseDetector,
    state: Option<Decided>,
    /// Wall-seconds per abstract model cost unit, calibrated on the first
    /// execution.
    calibration: Option<f64>,
    /// Where scheme executions run: per-call thread spawning by default,
    /// or a shared persistent worker pool (`smartapps-runtime`).
    exec: Arc<dyn SpmdExecutor>,
    /// Optional cross-run prior: consulted at decision time with the
    /// characterized functioning domain, so a freshly constructed loop can
    /// inherit the scheme a previous process learned (the runtime service
    /// wires this to its persistent profile store).
    scheme_prior: Option<SchemePrior>,
}

/// Callback resolving a functioning domain to a remembered best scheme.
pub type SchemePrior = Box<dyn Fn(DomainKey) -> Option<Scheme> + Send + Sync>;

impl AdaptiveReduction {
    /// Create an adaptive executor that spawns threads per invocation.
    pub fn new(loop_id: u64, threads: usize, lw_feasible: bool) -> Self {
        Self::with_executor(loop_id, threads, lw_feasible, Arc::new(SpawnExecutor))
    }

    /// Create an adaptive executor whose scheme executions run on `exec` —
    /// the constructor the runtime service uses to put every managed loop
    /// on one shared worker pool.
    pub fn with_executor(
        loop_id: u64,
        threads: usize,
        lw_feasible: bool,
        exec: Arc<dyn SpmdExecutor>,
    ) -> Self {
        AdaptiveReduction {
            loop_id,
            threads,
            lw_feasible,
            predictor: Predictor::default(),
            optimizer: Optimizer::default(),
            db: PerformanceDb::default(),
            monitor: Monitor::new(0.3),
            sample_iters: 2048,
            drift_detector: PhaseDetector::new(0.25, 2),
            state: None,
            calibration: None,
            exec,
            scheme_prior: None,
        }
    }

    /// Install a cross-run scheme prior (see [`SchemePrior`]).  The prior
    /// wins the first decision for a domain it knows; the feedback loop's
    /// evaluation still re-decides away from it if it underperforms.
    pub fn set_scheme_prior(
        &mut self,
        prior: impl Fn(DomainKey) -> Option<Scheme> + Send + Sync + 'static,
    ) {
        self.scheme_prior = Some(Box::new(prior));
    }

    /// The currently decided scheme, if any.
    pub fn current_scheme(&self) -> Option<Scheme> {
        self.state.as_ref().map(|s| s.scheme)
    }

    fn sample_chars(&self, pat: &AccessPattern) -> PatternChars {
        PatternChars::measure(&pat.truncate_iterations(self.sample_iters))
    }

    fn characterize_and_decide(&mut self, pat: &AccessPattern) -> (Scheme, f64) {
        let inspection = Inspector::analyze(pat, self.threads);
        let input = ModelInput::from_inspection(&inspection, self.lw_feasible);
        let ranking = self.predictor.rank(&input);
        let domain = DomainKey::of(&inspection.chars);
        // A known domain's remembered scheme overrides the analytic
        // ranking (keeping that scheme's own predicted cost so the
        // evaluator can still detect it misbehaving and re-decide).
        let (scheme, predicted) = self
            .scheme_prior
            .as_ref()
            .and_then(|prior| prior(domain))
            .filter(|s| *s != Scheme::Lw || self.lw_feasible)
            .and_then(|s| ranking.iter().copied().find(|(r, _)| *r == s))
            .unwrap_or(ranking[0]);
        self.state = Some(Decided {
            scheme,
            sample_chars: self.sample_chars(pat),
            inspection,
            predicted,
            domain,
        });
        (scheme, predicted)
    }

    /// Execute one invocation of the loop adaptively.
    pub fn execute(
        &mut self,
        pat: &AccessPattern,
        body: &(impl Fn(usize, usize) -> f64 + Sync),
    ) -> (Vec<f64>, InvocationLog) {
        // 1. Drift check against the decision's pattern.
        let mut measured_drift = 0.0;
        let mut characterized = false;
        if let Some(st) = &self.state {
            let sample = self.sample_chars(pat);
            measured_drift = drift(&st.sample_chars, &sample);
            if self.drift_detector.observe(measured_drift) {
                self.state = None; // phase change: re-characterize
            }
        }
        // 2. Decide if needed.
        if self.state.is_none() {
            characterized = true;
            self.characterize_and_decide(pat);
        }
        let (scheme, predicted, domain) = {
            let st = self.state.as_ref().unwrap();
            (st.scheme, st.predicted, st.domain)
        };
        // 3. Execute.  The stored inspection is only reusable when no
        // characterization was skipped on a drifted pattern; sel/lw must
        // match the *current* pattern exactly, so reuse only when the
        // pattern is the decision's own (characterized this call) or the
        // scheme needs no inspection.
        let t0 = Instant::now();
        let out = if matches!(scheme, Scheme::Sel | Scheme::Lw) && !characterized {
            run_scheme_on(scheme, pat, body, self.threads, None, &*self.exec)
        } else {
            let st = self.state.as_ref().unwrap();
            run_scheme_on(
                scheme,
                pat,
                body,
                self.threads,
                Some(&st.inspection),
                &*self.exec,
            )
        };
        let elapsed = t0.elapsed();
        // 4. Evaluate and adapt.
        self.monitor.record(scheme, elapsed);
        self.db.record(
            self.loop_id,
            domain,
            Sample {
                scheme,
                elapsed,
                predicted,
            },
        );
        let calib = *self
            .calibration
            .get_or_insert_with(|| elapsed.as_secs_f64() / predicted.max(1e-12));
        let measured_units = elapsed.as_secs_f64() / calib.max(1e-300);
        self.predictor.learn(scheme, predicted, measured_units);
        // Track the machine calibration with an EMA so cold-start effects
        // (first-touch pages, cold caches) wash out instead of reading as
        // permanent model error.
        self.calibration = Some(0.7 * calib + 0.3 * elapsed.as_secs_f64() / predicted.max(1e-12));
        let deviation = Deviation::evaluate(predicted, measured_units);
        let adaptation = self.optimizer.adapt(deviation);
        match adaptation {
            Adaptation::Keep | Adaptation::Tune => {}
            Adaptation::Redecide => {
                // Re-rank with learned corrections on the stored inspection.
                if let Some(st) = &self.state {
                    let input = ModelInput::from_inspection(&st.inspection, self.lw_feasible);
                    let ranking = self.predictor.rank(&input);
                    let (new_scheme, new_pred) = ranking[0];
                    let st = self.state.as_mut().unwrap();
                    st.scheme = new_scheme;
                    st.predicted = new_pred;
                }
            }
            Adaptation::Recharacterize => {
                self.state = None;
            }
        }
        (
            out,
            InvocationLog {
                scheme,
                characterized,
                drift: measured_drift,
                elapsed,
                adaptation,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::pattern::{contribution, sequential_reduce};
    use smartapps_workloads::{Distribution, PatternSpec};

    fn pattern(n: usize, iters: usize, cov: f64, seed: u64) -> AccessPattern {
        PatternSpec {
            num_elements: n,
            iterations: iters,
            refs_per_iter: 2,
            coverage: cov,
            dist: Distribution::Uniform,
            seed,
        }
        .generate()
    }

    fn body(_i: usize, r: usize) -> f64 {
        contribution(r)
    }

    #[test]
    fn first_invocation_characterizes_and_is_correct() {
        let pat = pattern(4096, 20_000, 1.0, 1);
        let mut ar = AdaptiveReduction::new(1, 4, false);
        let (out, log) = ar.execute(&pat, &body);
        assert!(log.characterized);
        assert_eq!(log.drift, 0.0);
        let oracle = sequential_reduce(&pat);
        for (a, b) in oracle.iter().zip(out.iter()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
        assert!(ar.current_scheme().is_some());
    }

    #[test]
    fn stable_pattern_reuses_decision() {
        let pat = pattern(4096, 20_000, 1.0, 1);
        let mut ar = AdaptiveReduction::new(1, 4, false);
        let (_, first) = ar.execute(&pat, &body);
        assert!(first.characterized);
        let mut recharacterizations = 0;
        for _ in 0..5 {
            let (_, log) = ar.execute(&pat, &body);
            if log.characterized {
                recharacterizations += 1;
            }
            assert!(log.drift < 0.01, "identical pattern has no drift");
        }
        // The deviation policy may escalate to re-characterization when
        // wall-clock noise (e.g. co-scheduled test binaries) makes an
        // execution read >2.5x its prediction, so allow isolated noise
        // escalations — what must never happen is one per call.
        assert!(
            recharacterizations <= 2,
            "stable pattern must not re-characterize every call"
        );
        assert_eq!(ar.monitor.invocations(), 6);
        assert!(ar.db.len() >= 6);
    }

    #[test]
    fn phase_change_triggers_recharacterization() {
        // Start dense/high-reuse, then switch to an extremely sparse
        // pattern: the scheme decision must eventually change.
        let dense = pattern(2048, 40_000, 1.0, 3);
        let sparse = pattern(500_000, 600, 0.002, 4);
        let mut ar = AdaptiveReduction::new(2, 4, false);
        let (_, dense_log) = ar.execute(&dense, &body);
        let dense_scheme = dense_log.scheme;
        let mut saw_recharacterize = false;
        let mut sparse_scheme = dense_scheme;
        for _ in 0..4 {
            let (_, log) = ar.execute(&sparse, &body);
            saw_recharacterize |= log.characterized;
            sparse_scheme = log.scheme;
        }
        assert!(saw_recharacterize, "sustained drift must re-characterize");
        assert_ne!(
            dense_scheme, sparse_scheme,
            "dense and ultra-sparse patterns demand different schemes"
        );
    }

    #[test]
    fn results_remain_correct_across_adaptations() {
        let mut ar = AdaptiveReduction::new(3, 3, false);
        for seed in 0..6 {
            let pat = pattern(1000 * (1 + seed as usize % 3), 5_000, 0.5, seed);
            let (out, _) = ar.execute(&pat, &body);
            let oracle = sequential_reduce(&pat);
            for (e, (a, b)) in oracle.iter().zip(out.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "seed {seed} elem {e}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn lw_only_chosen_when_feasible() {
        let pat = pattern(8192, 30_000, 1.0, 9);
        let mut infeasible = AdaptiveReduction::new(4, 4, false);
        infeasible.execute(&pat, &body);
        assert_ne!(infeasible.current_scheme(), Some(Scheme::Lw));
    }
}
