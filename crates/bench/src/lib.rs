//! # smartapps-bench — experiment harnesses
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1_config`    | Table 1 (architecture parameters + latency self-test) |
//! | `fig3_adaptive`    | Figure 3 (adaptive scheme selection validation, 8 procs) |
//! | `table2_appchar`   | Table 2 (application characteristics, 16 procs) |
//! | `fig6_pclr`        | Figure 6 (Sw/Hw/Flex time breakdown + speedups, 16 procs) |
//! | `fig7_scalability` | Figure 7 (harmonic-mean speedups at 4/8/16 procs) |
//! | `ablation`         | design-choice ablations called out in DESIGN.md |
//!
//! The library part holds the shared runners so integration tests can
//! assert on the same numbers the binaries print.

#![warn(missing_docs)]

pub mod pclr_experiment;
pub mod report;

pub use pclr_experiment::{run_app, AppResult, SimSystem};
