//! Table 2 — application characteristics, measured on the simulator.
//!
//! For each application the harness simulates the PCLR (Hw) system on a
//! 16-node machine and reports the per-loop statistics next to the paper's
//! published values: iterations per invocation, instructions per
//! iteration, reduction operations per iteration, reduction array size,
//! and the lines flushed / displaced per processor (the last two columns
//! of the paper's table).
//!
//! Usage: `table2_appchar [--procs=16] [--scale=1.0] [--seed=7]`

use smartapps_bench::pclr_experiment::{run_app, scaled_pattern, SimSystem};
use smartapps_bench::report::Table;
use smartapps_workloads::{table2_rows, PatternChars};

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::args()
        .find_map(|a| {
            a.strip_prefix(&format!("--{name}="))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(default)
}

fn main() {
    let procs: usize = arg("procs", 16);
    let scale: f64 = arg("scale", 1.0);
    let seed: u64 = arg("seed", 7);
    println!(
        "Table 2: application characteristics ({procs}-processor simulation, scale {scale})\n"
    );
    let mut t = Table::new(vec![
        "Appl.",
        "Loop",
        "%Tseq",
        "Invoc.",
        "Iters/inv (sim)",
        "Instr/iter (sim|paper)",
        "RedOps/iter",
        "Array KB (sim|paper)",
        "Flushed/proc (sim|paper)",
        "Displaced/proc (sim|paper)",
    ]);
    for row in &table2_rows() {
        let pat = scaled_pattern(row, scale, seed);
        let chars = PatternChars::measure(&pat);
        let res = run_app(row, &pat, SimSystem::Hw, procs);
        let iters = pat.num_iterations() as u64;
        let instr_per_iter = res.stats.counters.instructions / iters.max(1);
        t.row(vec![
            row.app.to_string(),
            row.loop_name.to_string(),
            format!("{:.1}", row.pct_tseq),
            row.invocations.to_string(),
            format!("{} ({})", iters, row.iters_per_invocation),
            format!("{} | {}", instr_per_iter, row.instrs_per_iter),
            format!("{}", row.red_ops_per_iter),
            format!("{:.1} | {:.1}", chars.array_kb(), row.red_array_kb),
            format!(
                "{} | {}",
                res.stats.counters.red_flushed / procs as u64,
                row.lines_flushed_paper
            ),
            format!(
                "{} | {}",
                res.stats.counters.red_displaced / procs as u64,
                row.lines_displaced_paper
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "notes: %Tseq and invocation counts are whole-application properties\n\
         reported from the paper (we simulate the loop the paper simulates);\n\
         instr/iter is measured as retired instructions / iterations;\n\
         flushed/displaced are per-processor averages over one invocation."
    );
}
