fn main() {
    let rows = smartapps_workloads::table2_rows();
    for row in &rows {
        let scale = 1.0;
        let t0 = std::time::Instant::now();
        let (seq, sw, hw, flex) =
            smartapps_bench::pclr_experiment::run_all_systems(row, scale, 16, 7);
        let sp = |r: &smartapps_bench::AppResult| {
            seq.stats.total_cycles as f64 / r.stats.total_cycles as f64
        };
        println!(
            "{:7} scale={:.2} wall={:6.1?} | Sw {:5.2} Hw {:5.2} Flex {:5.2} (paper {:.1}/{:.1}/{:.1}) | hw flush/disp per proc {}/{} (paper {}/{}) | sw bars i/l/m {:.0}%/{:.0}%/{:.0}%",
            row.app, scale, t0.elapsed(), sp(&sw), sp(&hw), sp(&flex),
            row.fig6_speedups.0, row.fig6_speedups.1, row.fig6_speedups.2,
            hw.stats.counters.red_flushed / 16, hw.stats.counters.red_displaced / 16,
            row.lines_flushed_paper, row.lines_displaced_paper,
            100.0 * sw.breakdown.init as f64 / sw.breakdown.total() as f64,
            100.0 * sw.breakdown.looptime as f64 / sw.breakdown.total() as f64,
            100.0 * sw.breakdown.merge as f64 / sw.breakdown.total() as f64,
        );
    }
}
