//! Figure 3 — experimental validation of adaptive reduction-scheme
//! selection.
//!
//! For each of the paper's sixteen (application, input-size) rows, this
//! harness:
//!
//! 1. generates an access pattern matching the row's published measures
//!    (MO, dimension, SP, CON);
//! 2. runs the inspector and the decision model to obtain the
//!    **recommended** scheme;
//! 3. executes every applicable scheme on real threads and ranks them by
//!    measured wall time — the **experimental result** column;
//! 4. reports agreement between our model, our measurements, and the
//!    paper's published recommendation/ranking.
//!
//! Usage: `fig3_adaptive [--threads=8] [--reps=3] [--seed=1234] [--quick]`
//! (`--quick` subsamples iterations 4x for a fast smoke run).

use smartapps_bench::report::Table;
use smartapps_reductions::{rank_schemes, DecisionModel, Inspector, ModelInput};
use smartapps_workloads::{contribution, fig3_rows};

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::args()
        .find_map(|a| {
            a.strip_prefix(&format!("--{name}="))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(default)
}

fn main() {
    let threads: usize = arg("threads", 8);
    let reps: usize = arg("reps", 3);
    let seed: u64 = arg("seed", 1234);
    let quick = std::env::args().any(|a| a == "--quick");

    println!(
        "Figure 3: adaptive scheme selection, {} threads, {} reps, seed {}{}\n",
        threads,
        reps,
        seed,
        if quick {
            " (quick: iterations / 4)"
        } else {
            ""
        }
    );

    let mut table = Table::new(vec![
        "APP",
        "MO",
        "N",
        "SP%",
        "CON",
        "paper rec",
        "paper best",
        "model rec",
        "measured ranking (speedup)",
    ]);
    let model = DecisionModel::default();
    let rows = fig3_rows();
    let (mut match_measured, mut match_paper_rec, mut top2_measured) = (0, 0, 0);
    for row in &rows {
        let mut pat = row.pattern(seed);
        if quick {
            pat = pat.truncate_iterations((pat.num_iterations() / 4).max(1));
        }
        let insp = Inspector::analyze(&pat, threads);
        let input = ModelInput::from_inspection(&insp, row.lw_feasible);
        let pred = model.decide(&input);
        let recommended = pred.best();

        let body = |_i: usize, r: usize| contribution(r);
        let (ranking, seq_t) = rank_schemes(&pat, &body, threads, row.lw_feasible, reps);
        let ranking_str = ranking
            .iter()
            .map(|t| {
                format!(
                    "{}({:.2})",
                    t.scheme.abbrev(),
                    seq_t.as_secs_f64() / t.elapsed.as_secs_f64()
                )
            })
            .collect::<Vec<_>>()
            .join(" > ");
        if ranking[0].scheme == recommended {
            match_measured += 1;
        }
        if ranking.iter().take(2).any(|t| t.scheme == recommended) {
            top2_measured += 1;
        }
        if recommended.abbrev() == row.recommended_paper {
            match_paper_rec += 1;
        }
        table.row(vec![
            row.app.to_string(),
            row.mo.to_string(),
            row.n.to_string(),
            format!("{:.2}", row.sp_pct),
            format!("{:.2}", row.con),
            row.recommended_paper.to_string(),
            row.best_paper.to_string(),
            recommended.abbrev().to_string(),
            ranking_str,
        ]);
    }
    println!("{}", table.render());
    let n = rows.len();
    println!("model recommendation == our measured best : {match_measured}/{n}");
    println!("model recommendation in our measured top-2: {top2_measured}/{n}");
    println!("model recommendation == paper recommended : {match_paper_rec}/{n}");
    println!(
        "\n(paper's own model matched its measured best on 12/16 rows; ties\n\
         between schemes within measurement noise are common on the sparse rows)"
    );
}
