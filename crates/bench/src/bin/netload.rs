//! Loopback load generator for `smartapps-server`: N concurrent clients
//! pipeline small reduction jobs over TCP and the run reports sustained
//! jobs/s plus latency percentiles.
//!
//! ```sh
//! cargo run --release -p smartapps-bench --bin netload -- \
//!     [clients] [seconds] [window] [wire] [idle_conns]
//! #   defaults: 8       4         32       text   0
//! ```
//!
//! `wire` selects the protocol scenario:
//!
//! * `text` — the line protocol, inline generator specs (the original
//!   scenario).
//! * `bin` — every client negotiates binary wire v2 (`upgrade bin`)
//!   and the same jobs ride length-prefixed frames.
//! * `bin-upload` — binary wire v2 **and** CSR upload: each client
//!   uploads the class patterns once (the server interns them, so all
//!   clients share one copy per class) and submits by handle.
//!
//! `idle_conns` opens that many connected-but-silent connections before
//! the run — under the epoll reactors they must cost nothing (compare
//! jobs/s with `0` and `256`; see `tests/soak_epoll.rs` for the hard
//! assertion).
//!
//! Each client keeps `window` submissions outstanding (submit → await
//! `done` → submit the next), so the server sees a steady in-flight load
//! rather than lockstep request/response ping-pong.  Every response is a
//! checksum `ack` verified against the class's expected value, so the
//! numbers measure *correct* completions.
//!
//! The epilogue prints both sides of the latency story: the client-side
//! percentiles measured here, the server-side request-latency quantiles
//! recovered from the `metrics` exposition, and the per-stage
//! attribution (`smartapps_stage_ns{stage=…}` — queue / decide / exec /
//! completion / write p95) saying *where* that server-side latency went
//! (plus any quarantined classes from `stats v2`) — see
//! `docs/OBSERVABILITY.md`.  When the CI floor env var is set, every
//! load-bearing stage series must have attributed nonzero time.
//!
//! The point being measured: the server runs `1 acceptor + R reactors`
//! service threads plus the runtime's dispatchers and pool — a thread
//! count **independent of the client count**.  Scaling `clients` (or
//! `idle_conns`) up changes only this process's loadgen threads (which
//! stand in for remote machines), never the server's.

use smartapps_runtime::{Runtime, RuntimeConfig};
use smartapps_server::{
    Client, DoneOutcome, Payload, ReplyMode, Server, ServerConfig, SubmitArgs, UploadArgs,
    WireBody, WireDist, WireSource, WireSpec,
};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload classes the clients cycle through (distinct seeds =
/// distinct signatures → shard spread; same spec within a class =
/// shared pattern allocation → coalescing).
fn class_spec(class: usize) -> WireSpec {
    WireSpec {
        elements: 512,
        iterations: 600,
        refs_per_iter: 2,
        coverage: 0.9,
        dist: WireDist::Uniform,
        seed: 40 + class as u64,
    }
}

const CLASSES: usize = 4;

/// Which protocol scenario the clients run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireMode {
    Text,
    Bin,
    BinUpload,
}

impl WireMode {
    fn parse(s: &str) -> WireMode {
        match s {
            "text" => WireMode::Text,
            "bin" => WireMode::Bin,
            "bin-upload" => WireMode::BinUpload,
            other => panic!("unknown wire mode {other:?} (text | bin | bin-upload)"),
        }
    }
}

struct ClientReport {
    completed: u64,
    latencies: Vec<Duration>,
}

fn drive_client(
    addr: std::net::SocketAddr,
    client_id: usize,
    deadline: Instant,
    window: usize,
    mode: WireMode,
    expected: Arc<Vec<(usize, i64)>>,
) -> ClientReport {
    let mut client = Client::connect(addr).expect("connect");
    if mode != WireMode::Text {
        client.upgrade_binary().expect("upgrade bin");
    }
    // In the upload scenario each class is submitted by handle.  Every
    // client uploads the same structures; the server interns, so this
    // dedups to one copy per class service-wide.
    let sources: Vec<WireSource> = match mode {
        WireMode::BinUpload => (0..CLASSES)
            .map(|c| {
                let pat = class_spec(c).to_pattern_spec().generate();
                let handle = client
                    .upload(UploadArgs {
                        token: u64::MAX - c as u64,
                        num_elements: pat.num_elements,
                        iter_ptr: pat.iter_ptr,
                        indices: pat.indices,
                    })
                    .expect("upload");
                WireSource::Handle(handle)
            })
            .collect(),
        _ => (0..CLASSES)
            .map(|c| WireSource::Gen(class_spec(c)))
            .collect(),
    };
    let mut submitted_at: HashMap<u64, Instant> = HashMap::new();
    let mut latencies = Vec::new();
    let mut completed = 0u64;
    let mut next_token = 0u64;
    let mut in_flight = 0usize;
    let submit_one =
        |client: &mut Client, submitted_at: &mut HashMap<u64, Instant>, next_token: &mut u64| {
            let token = *next_token;
            *next_token += 1;
            submitted_at.insert(token, Instant::now());
            client
                .submit(SubmitArgs {
                    token,
                    reply: ReplyMode::Ack,
                    body: WireBody::Sum,
                    source: sources[(client_id + token as usize) % CLASSES],
                })
                .expect("submit");
        };
    for _ in 0..window {
        submit_one(&mut client, &mut submitted_at, &mut next_token);
        in_flight += 1;
    }
    while in_flight > 0 {
        let done = client.next_done().expect("next_done");
        let t0 = submitted_at
            .remove(&done.token)
            .expect("unknown token in response");
        latencies.push(t0.elapsed());
        let class = (client_id + done.token as usize) % CLASSES;
        match done.outcome {
            DoneOutcome::Ok {
                payload: Payload::Checksum { len, sum },
                ..
            } => {
                let (want_len, want_sum) = expected[class];
                assert_eq!((len, sum), (want_len, want_sum), "class {class} checksum");
            }
            other => panic!("job failed: {other:?}"),
        }
        completed += 1;
        in_flight -= 1;
        if Instant::now() < deadline {
            submit_one(&mut client, &mut submitted_at, &mut next_token);
            in_flight += 1;
        }
    }
    ClientReport {
        completed,
        latencies,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Nearest-rank quantile recovered from the `metrics` exposition's
/// cumulative `_bucket` lines for one series: the smallest `le` bound
/// whose cumulative count covers the rank (so the value is bounded by
/// one log2 bucket, same as the server-side histogram itself).
fn exposition_quantile(text: &str, series_prefix: &str, q: f64) -> Option<u64> {
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(series_prefix) else {
            continue;
        };
        let (le, cum) = rest.split_once("\"} ")?;
        let le = le.strip_prefix("le=\"")?;
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().ok()?
        };
        buckets.push((le, cum.trim().parse().ok()?));
    }
    let total = buckets.last()?.1;
    if total == 0 {
        return None;
    }
    let rank = (q * (total - 1) as f64).round() as u64 + 1;
    buckets.iter().find(|(_, cum)| *cum >= rank).map(|(le, _)| {
        if le.is_finite() {
            *le as u64
        } else {
            u64::MAX
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |i: usize, default: usize| -> usize {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let clients = arg(1, 8).max(1);
    let seconds = arg(2, 4).max(1);
    let window = arg(3, 32).max(1);
    let mode = WireMode::parse(args.get(4).map(String::as_str).unwrap_or("text"));
    let idle_conns = arg(5, 0);

    let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
    let dispatchers = rt.dispatcher_count();
    let workers = rt.width();
    let cfg = ServerConfig::default();
    let reactors = cfg.reactors;
    let server = Server::start(rt.clone(), cfg).expect("start server");
    let addr = server.local_addr();

    // Expected checksum per class, computed once from the local oracle.
    let expected: Arc<Vec<(usize, i64)>> = Arc::new(
        (0..CLASSES)
            .map(|c| {
                let pat = class_spec(c).to_pattern_spec().generate();
                let oracle = smartapps_workloads::sequential_reduce_i64(&pat);
                (oracle.len(), smartapps_server::checksum(&oracle))
            })
            .collect(),
    );

    // The silent crowd: connections that exist but never speak.  They
    // are held open across the measured run.
    let idle: Vec<TcpStream> = (0..idle_conns)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    println!(
        "netload: {clients} clients x window {window} ({mode:?} wire, {idle_conns} idle conns) \
         over loopback {addr} for {seconds}s \
         (server threads: 1 acceptor + {reactors} reactors + {dispatchers} dispatchers \
         + {workers}-wide pool — independent of client count)"
    );

    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(seconds as u64);
    let reports: Vec<ClientReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let expected = expected.clone();
                s.spawn(move || drive_client(addr, c, deadline, window, mode, expected))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let total: u64 = reports.iter().map(|r| r.completed).sum();
    let mut latencies: Vec<Duration> = reports.into_iter().flat_map(|r| r.latencies).collect();
    latencies.sort_unstable();
    let jobs_per_sec = total as f64 / wall.as_secs_f64();
    println!(
        "netload: {total} jobs in {:.2}s = {jobs_per_sec:.0} jobs/s | latency p50 {:?} \
         p95 {:?} p99 {:?}",
        wall.as_secs_f64(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    // One more connection for the service-counter epilogue.
    let mut probe = Client::connect(addr).expect("connect probe");
    let stats = probe.stats().expect("stats");
    let get = |k: &str| {
        stats
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    println!(
        "server: {} submitted, {} completed, {} batches ({} coalesced, {} steals, {} fused jobs)",
        get("submitted"),
        get("completed"),
        get("batches"),
        get("coalesced"),
        get("steals"),
        get("fused_jobs"),
    );

    // The server's own view of the same traffic, scraped back over the
    // `metrics` exposition: request latency measured between admission
    // and the `done` write, next to the client-side numbers above.
    let text = probe.metrics().expect("metrics");
    let server_q = |q: f64| {
        exposition_quantile(&text, "smartapps_request_ns_bucket{conn=\"all\",", q)
            .expect("server-side request-latency buckets in the exposition")
    };
    let (sp50, sp95, sp99) = (server_q(0.50), server_q(0.95), server_q(0.99));
    assert!(sp99 > 0, "server-side p99 must parse nonzero");
    println!(
        "server: request latency (from metrics) p50 {:?} p95 {:?} p99 {:?}",
        Duration::from_nanos(sp50),
        Duration::from_nanos(sp95),
        Duration::from_nanos(sp99),
    );

    // Where that request latency went: the runtime's per-stage
    // attribution series (`smartapps_stage_ns{stage=…}`), scraped from
    // the same exposition — the answer to "queueing, deciding, or
    // executing?" without a trace replay.  Under the CI smoke floor the
    // load-bearing stages must have attributed nonzero time.
    let stage_p95 = |stage: &str| {
        exposition_quantile(
            &text,
            &format!("smartapps_stage_ns_bucket{{stage=\"{stage}\","),
            0.95,
        )
        .unwrap_or(0)
    };
    let stages: Vec<(&str, u64)> = ["queue", "decide", "exec", "completion", "write"]
        .iter()
        .map(|s| (*s, stage_p95(s)))
        .collect();
    println!(
        "server: stage attribution p95{}",
        stages
            .iter()
            .map(|(s, v)| format!(" {s} {:?}", Duration::from_nanos(*v)))
            .collect::<String>()
    );
    if std::env::var("SMARTAPPS_NETLOAD_MIN_JOBS_PER_SEC").is_ok() {
        for (stage, p95) in &stages {
            assert!(
                *p95 > 0,
                "smoke: stage series {stage} attributed no time under load"
            );
        }
    }
    if mode == WireMode::BinUpload {
        // Interning proof: every client uploaded every class, but only
        // the first copy of each was fresh.
        let count = |outcome: &str| -> u64 {
            text.lines()
                .find_map(|l| {
                    l.strip_prefix(&format!("smartapps_uploads{{outcome=\"{outcome}\"}} "))
                        .and_then(|v| v.trim().parse().ok())
                })
                .unwrap_or(0)
        };
        let (fresh, dedup) = (count("fresh"), count("dedup"));
        println!("server: {fresh} fresh uploads, {dedup} deduplicated");
        assert_eq!(fresh, CLASSES as u64, "one fresh intern per class");
        assert_eq!(
            dedup,
            (clients as u64 - 1) * CLASSES as u64,
            "every other upload must dedup"
        );
    }
    let v2 = probe.stats_v2().expect("stats v2");
    if v2.quarantined.is_empty() {
        println!("server: no quarantined classes");
    } else {
        for (sig, ttl) in &v2.quarantined {
            println!("server: quarantined class {sig:016x} ({ttl}s of TTL remaining)");
        }
    }
    drop(idle);
    server.shutdown();

    // Optional floor for CI-style smoke assertions.
    if let Ok(min) = std::env::var("SMARTAPPS_NETLOAD_MIN_JOBS_PER_SEC") {
        let min: f64 = min
            .parse()
            .expect("numeric SMARTAPPS_NETLOAD_MIN_JOBS_PER_SEC");
        assert!(
            jobs_per_sec >= min,
            "sustained {jobs_per_sec:.0} jobs/s below the {min:.0} floor"
        );
    }
}
