//! Offline tail-latency attribution: replay a trace-ring dump into
//! per-class stage waterfalls and verify that the attribution accounts
//! for every nanosecond.
//!
//! ```sh
//! SMARTAPPS_TRACE_DUMP=/tmp/trace.txt \
//!     cargo run --release -p smartapps-bench --bin throughput -- 4 120 4 t
//! cargo run --release -p smartapps-bench --bin trace_attr -- /tmp/trace.txt
//! ```
//!
//! The dump is one [`TraceEvent`] per line
//! ([`TraceEvent::to_line`]; `#`-comment and blank lines are skipped).
//! For every workload class the replay reports the five-stage waterfall
//! — queue / decide / simplify / exec / completion, p50 and p95 each —
//! next to the class's end-to-end quantiles, so a tail regression can
//! be read off as *which stage* grew without re-running the workload.
//!
//! The hard check behind the report: for every executed event, the five
//! stage durations must sum back to the event's end-to-end latency
//! within one log2 histogram bucket (the derivation telescopes, so they
//! normally agree *exactly*; a mismatch means clock skew between the
//! stamping sites or a derivation/format drift).  Classes with any
//! mismatching event are flagged and the run exits non-zero — CI runs
//! this against a `throughput`-produced dump as a release smoke.

use smartapps_telemetry::{TraceError, TraceEvent};
use std::collections::BTreeMap;
use std::time::Duration;

/// log2 bucket index of a duration, matching the telemetry histogram's
/// bucketing: 0 for 0, otherwise the position of the highest set bit.
fn log2_bucket(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// The acceptance bound: attribution and end-to-end agree within one
/// log2 bucket (they telescope, so exact equality is the common case).
fn within_one_bucket(sum: u64, e2e: u64) -> bool {
    log2_bucket(sum).abs_diff(log2_bucket(e2e)) <= 1
}

/// Nearest-rank percentile of an unsorted sample set.
fn percentile(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Per-class accumulation of one replay.
#[derive(Default)]
struct ClassAttribution {
    /// `[queue, decide, simplify, exec, completion]` samples, executed
    /// events only.
    stages: [Vec<u64>; 5],
    end_to_end: Vec<u64>,
    /// Events that never reached execution (quarantined, or cut off by
    /// shutdown) — they carry no stage attribution.
    unexecuted: usize,
    errors: usize,
    /// `(stage sum, end-to-end)` of the worst mismatching event.
    worst_mismatch: Option<(u64, u64)>,
    mismatches: usize,
}

const STAGE_NAMES: [&str; 5] = ["queue", "decide", "simplify", "exec", "completion"];

impl ClassAttribution {
    fn add(&mut self, e: &TraceEvent) {
        if e.error != TraceError::None {
            self.errors += 1;
        }
        if e.executed_ns == 0 || e.completed_ns == 0 {
            self.unexecuted += 1;
            return;
        }
        let stages = [
            e.stage_queue(),
            e.stage_decide(),
            e.stage_simplify(),
            e.stage_exec(),
            e.stage_completion(),
        ];
        let sum: u64 = stages.iter().sum();
        let e2e = e.end_to_end();
        if !within_one_bucket(sum, e2e) {
            self.mismatches += 1;
            let delta = sum.abs_diff(e2e);
            if self
                .worst_mismatch
                .is_none_or(|(s, t)| delta > s.abs_diff(t))
            {
                self.worst_mismatch = Some((sum, e2e));
            }
        }
        for (bucket, v) in self.stages.iter_mut().zip(stages) {
            bucket.push(v);
        }
        self.end_to_end.push(e2e);
    }
}

fn parse_dump(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let event = TraceEvent::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: trace_attr <trace-dump-file>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        eprintln!("trace_attr: reading {path}: {err}");
        std::process::exit(2);
    });
    let events = parse_dump(&text).unwrap_or_else(|err| {
        eprintln!("trace_attr: {path}: {err}");
        std::process::exit(2);
    });
    if events.is_empty() {
        eprintln!("trace_attr: {path}: no events (empty dump)");
        std::process::exit(2);
    }

    let mut classes: BTreeMap<u64, ClassAttribution> = BTreeMap::new();
    for e in &events {
        classes.entry(e.signature).or_default().add(e);
    }

    println!(
        "trace_attr: {} events across {} classes from {path}",
        events.len(),
        classes.len()
    );
    println!(
        "  {:<16} {:>5}  {:>21}  {}",
        "class",
        "jobs",
        "end-to-end p50/p95",
        STAGE_NAMES.map(|s| format!("{s:>9} p50/p95")).join("  ")
    );
    let ns = |v: u64| format!("{:.3?}", Duration::from_nanos(v));
    for (sig, attr) in &mut classes {
        let e2e = (
            percentile(&mut attr.end_to_end, 0.50),
            percentile(&mut attr.end_to_end, 0.95),
        );
        let cols: Vec<String> = attr
            .stages
            .iter_mut()
            .map(|s| {
                format!(
                    "{:>17}",
                    format!("{}/{}", ns(percentile(s, 0.50)), ns(percentile(s, 0.95)))
                )
            })
            .collect();
        println!(
            "  {sig:016x} {:>5}  {:>21}  {}",
            attr.end_to_end.len(),
            format!("{}/{}", ns(e2e.0), ns(e2e.1)),
            cols.join("  ")
        );
        if attr.unexecuted > 0 || attr.errors > 0 {
            println!(
                "  {:<16} {:>5}  ({} unexecuted, {} errored — excluded from attribution)",
                "", "", attr.unexecuted, attr.errors
            );
        }
    }

    // The verdict: any class whose stage attribution fails to account
    // for its end-to-end latency fails the run.
    let flagged: Vec<(u64, &ClassAttribution)> = classes
        .iter()
        .filter(|(_, a)| a.mismatches > 0)
        .map(|(sig, a)| (*sig, a))
        .collect();
    if flagged.is_empty() {
        println!(
            "trace_attr OK: stage attribution sums to end-to-end (within one log2 bucket) \
             for every executed event"
        );
        return;
    }
    for (sig, attr) in &flagged {
        let (sum, e2e) = attr.worst_mismatch.expect("flagged class has a mismatch");
        eprintln!(
            "trace_attr: class {sig:016x}: {} of {} events mis-attributed \
             (worst: stages sum to {} vs {} end-to-end)",
            attr.mismatches,
            attr.end_to_end.len(),
            ns(sum),
            ns(e2e),
        );
    }
    eprintln!(
        "trace_attr FAILED: {} class(es) with attribution that does not sum to \
         end-to-end latency",
        flagged.len()
    );
    std::process::exit(1);
}
