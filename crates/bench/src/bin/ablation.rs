//! Ablations of the design choices called out in DESIGN.md.
//!
//! 1. **Page placement** — first-touch vs round-robin for shared data (the
//!    paper: "our experiments show that this allocation policy [first
//!    touch] achieves the best performance results for both the baseline
//!    and the PCLR system").
//! 2. **Combine-unit throughput** — the pipelined 1/3-clock FP adder vs a
//!    4x slower unit (is background combining bandwidth-critical?).
//! 3. **Programmable-controller occupancy** — Flex handler cost sweep
//!    (how programmable can the controller be before PCLR stops paying?).
//! 4. **Decision-model sensitivity** — perturb each calibration constant
//!    ±50% and count how many Figure 3 recommendations flip.
//! 5. **Contention (CH/CHD tail)** — sweep a Zipf exponent over the
//!    reference distribution and watch the measured scheme ranking: the
//!    taxonomy's high-contention regime (HCHR) is where privatizing
//!    schemes pull away from anything that synchronizes on hot elements.
//!
//! Usage: `ablation [--scale=0.25] [--seed=7] [--procs=16]`

use smartapps_bench::pclr_experiment::{params_for, scaled_pattern};
use smartapps_bench::report::Table;
use smartapps_reductions::{DecisionModel, Inspector, ModelInput, ModelParams};
use smartapps_sim::MachineConfig;
use smartapps_workloads::tracegen::{traces_for, SimScheme};
use smartapps_workloads::{fig3_rows, table2_rows};

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::args()
        .find_map(|a| {
            a.strip_prefix(&format!("--{name}="))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(default)
}

fn run_with(
    row: &smartapps_workloads::Table2Row,
    cfg: MachineConfig,
    scheme: SimScheme,
    pat: &std::sync::Arc<smartapps_workloads::AccessPattern>,
    placement: smartapps_sim::directory::PlacementPolicy,
) -> u64 {
    let nprocs = cfg.nodes;
    let traces = traces_for(scheme, pat, nprocs, params_for(row));
    let mut m = smartapps_sim::Machine::with_placement(cfg, traces, placement);
    m.run().total_cycles
}

fn main() {
    let scale: f64 = arg("scale", 0.25);
    let seed: u64 = arg("seed", 7);
    let procs: usize = arg("procs", 16);
    let rows = table2_rows();
    let equake = rows.iter().find(|r| r.app == "Equake").unwrap();
    let pat = scaled_pattern(equake, scale, seed);

    println!("Ablation 1: page placement (Equake, {procs}p, scale {scale})\n");
    {
        use smartapps_sim::directory::PlacementPolicy::{FirstTouch, RoundRobin};
        let mut t = Table::new(vec![
            "system",
            "first-touch cycles",
            "round-robin cycles",
            "penalty",
        ]);
        for (name, scheme) in [("Sw", SimScheme::Sw), ("Hw (PCLR)", SimScheme::Pclr)] {
            let ft = run_with(
                equake,
                MachineConfig::table1(procs),
                scheme,
                &pat,
                FirstTouch,
            );
            let rr = run_with(
                equake,
                MachineConfig::table1(procs),
                scheme,
                &pat,
                RoundRobin,
            );
            t.row(vec![
                name.to_string(),
                ft.to_string(),
                rr.to_string(),
                format!("{:+.1}%", 100.0 * (rr as f64 / ft as f64 - 1.0)),
            ]);
        }
        println!("{}", t.render());
    }

    println!("Ablation 2: combine-unit initiation interval (Equake Hw, {procs}p)\n");
    {
        let mut t = Table::new(vec!["II (cycles/elem)", "total cycles", "vs II=3"]);
        let mut base = 0u64;
        for ii in [3u64, 6, 12, 24] {
            let mut cfg = MachineConfig::table1(procs);
            cfg.combine_init_interval = ii;
            let c = run_with(
                equake,
                cfg,
                SimScheme::Pclr,
                &pat,
                smartapps_sim::directory::PlacementPolicy::FirstTouch,
            );
            if ii == 3 {
                base = c;
            }
            t.row(vec![
                ii.to_string(),
                c.to_string(),
                format!("{:+.1}%", 100.0 * (c as f64 / base as f64 - 1.0)),
            ]);
        }
        println!("{}", t.render());
    }

    println!("Ablation 3: programmable-controller occupancy factor (Equake, {procs}p)\n");
    {
        let mut t = Table::new(vec![
            "flex occupancy factor",
            "total cycles",
            "vs hardwired",
        ]);
        let hw = run_with(
            equake,
            MachineConfig::table1(procs),
            SimScheme::Pclr,
            &pat,
            smartapps_sim::directory::PlacementPolicy::FirstTouch,
        );
        t.row(vec![
            "1 (hardwired)".to_string(),
            hw.to_string(),
            "+0.0%".to_string(),
        ]);
        for f in [2u64, 4, 8, 16] {
            let mut cfg = MachineConfig::flex(procs);
            cfg.flex_occupancy_factor = f;
            cfg.flex_combine_init_interval = 3 * f.min(8);
            let c = run_with(
                equake,
                cfg,
                SimScheme::Pclr,
                &pat,
                smartapps_sim::directory::PlacementPolicy::FirstTouch,
            );
            t.row(vec![
                f.to_string(),
                c.to_string(),
                format!("{:+.1}%", 100.0 * (c as f64 / hw as f64 - 1.0)),
            ]);
        }
        println!("{}", t.render());
    }

    println!("Ablation 4: decision-model constant sensitivity (Figure 3 rows)\n");
    {
        let rows3 = fig3_rows();
        let baseline: Vec<_> = {
            let model = DecisionModel::default();
            rows3
                .iter()
                .map(|row| {
                    let pat = row.pattern(seed);
                    let insp = Inspector::analyze(&pat, 8);
                    model
                        .decide(&ModelInput::from_inspection(&insp, row.lw_feasible))
                        .best()
                })
                .collect()
        };
        let mut t = Table::new(vec!["constant", "x0.5 flips", "x2.0 flips"]);
        type Knob = (&'static str, fn(&mut ModelParams, f64));
        let knobs: Vec<Knob> = vec![
            ("rep_merge_elem", |p, f| p.rep_merge_elem *= f),
            ("ll_link_overhead", |p, f| p.ll_link_overhead *= f),
            ("ll_merge_line", |p, f| p.ll_merge_line *= f),
            ("sel_indirect", |p, f| p.sel_indirect *= f),
            ("hash_per_ref", |p, f| p.hash_per_ref *= f),
            ("inspector_per_ref", |p, f| p.inspector_per_ref *= f),
        ];
        for (name, apply) in knobs {
            let flips = |factor: f64| -> usize {
                let mut params = ModelParams::default();
                apply(&mut params, factor);
                let model = DecisionModel::new(params);
                rows3
                    .iter()
                    .zip(baseline.iter())
                    .filter(|(row, base)| {
                        let pat = row.pattern(seed);
                        let insp = Inspector::analyze(&pat, 8);
                        let got = model
                            .decide(&ModelInput::from_inspection(&insp, row.lw_feasible))
                            .best();
                        got != **base
                    })
                    .count()
            };
            t.row(vec![
                name.to_string(),
                flips(0.5).to_string(),
                flips(2.0).to_string(),
            ]);
        }
        println!("{}", t.render());
        println!("(flips out of 16 rows; small counts = robust calibration)");
    }

    println!("\nAblation 5: contention sweep (host timing, 4 threads)\n");
    {
        use smartapps_reductions::rank_schemes;
        use smartapps_workloads::{contribution, Distribution, PatternSpec};
        let mut t = Table::new(vec![
            "distribution",
            "max refs/elem",
            "model rec",
            "measured ranking",
        ]);
        let dists = [
            ("uniform", Distribution::Uniform),
            ("zipf s=0.8", Distribution::Zipf { s: 0.8 }),
            ("zipf s=1.2", Distribution::Zipf { s: 1.2 }),
            ("zipf s=1.6", Distribution::Zipf { s: 1.6 }),
        ];
        for (name, dist) in dists {
            let pat = PatternSpec {
                num_elements: 65_536,
                iterations: 400_000,
                refs_per_iter: 2,
                coverage: 1.0,
                dist,
                seed,
            }
            .generate();
            let insp = Inspector::analyze(&pat, 4);
            let max_refs = insp.chars.max_refs_per_element;
            let rec = DecisionModel::default()
                .decide(&ModelInput::from_inspection(&insp, false))
                .best();
            let (ranking, seq_t) = rank_schemes(&pat, &|_i, r| contribution(r), 4, false, 3);
            let ranking_str = ranking
                .iter()
                .map(|x| {
                    format!(
                        "{}({:.2})",
                        x.scheme.abbrev(),
                        seq_t.as_secs_f64() / x.elapsed.as_secs_f64()
                    )
                })
                .collect::<Vec<_>>()
                .join(" > ");
            t.row(vec![
                name.to_string(),
                max_refs.to_string(),
                rec.abbrev().to_string(),
                ranking_str,
            ]);
        }
        println!("{}", t.render());
        println!(
            "(hot elements concentrate stripe-lock traffic in `ll`/`hash` merges;\n\
             fully privatized schemes are contention-immune)"
        );
    }
}
