//! Table 1 — architectural characteristics of the modeled CC-NUMA.
//!
//! Prints the configuration and verifies, by measurement on the simulator,
//! that the contention-free round-trip latencies match the paper's values
//! (L1 = 2, L2 = 10, local memory = 104, 2-hop remote = 297 processor
//! cycles).

use smartapps_bench::report::Table;
use smartapps_sim::addr::regions;
use smartapps_sim::{Machine, MachineConfig, TraceBuilder, TraceSource};

fn boxed(t: smartapps_sim::VecTrace) -> Box<dyn TraceSource> {
    Box::new(t)
}

/// Measure the latency of one dependent load on a machine by window
/// pressure: the trailing work cannot retire until the fill returns.
fn measure_local() -> u64 {
    let cfg = MachineConfig::table1(1);
    let a = regions::shared_elem(0);
    // The 64-instruction bundle fills the window and overlaps the miss
    // entirely; the trailing 4-instruction bundle retires one cycle after
    // the fill returns, so latency = total - 1.
    let t = TraceBuilder::new().load(a).work(64, 0).work(4, 0).build();
    let mut m = Machine::new(cfg, vec![boxed(t)]);
    let stats = m.run();
    stats.total_cycles - 1
}

fn measure_remote() -> u64 {
    let cfg = MachineConfig::table1(2);
    let a = regions::shared_elem(0);
    // Node 1 first-touches the page; node 0 then misses remotely.
    let t0 = TraceBuilder::new()
        .barrier()
        .load(a)
        .work(64, 0)
        .work(4, 0)
        .build();
    let t1 = TraceBuilder::new()
        .load(a)
        .work(64, 0)
        .work(4, 0)
        .barrier()
        .build();
    let mut m = Machine::new(cfg.clone(), vec![boxed(t0), boxed(t1)]);
    let stats = m.run();
    // Both processors' clocks are set to the barrier-release time; node 1
    // then finishes immediately while node 0 rides out the remote fill
    // plus one trailing issue cycle.
    let _ = cfg;
    stats.proc_cycles[0] - stats.proc_cycles[1] - 1
}

fn main() {
    let c = MachineConfig::table1(16);
    println!("Table 1: Architectural characteristics of the modeled CC-NUMA");
    println!("(latencies are contention-free round trips from the processor)\n");

    let mut t = Table::new(vec!["Processor Parameters", "Value"]);
    t.row(vec![
        "issue width (dynamic)".to_string(),
        format!("{}-issue, 1 GHz", c.issue_width),
    ]);
    t.row(vec![
        "int, fp, ld/st FU".to_string(),
        format!("{}, {}, {}", c.int_units, c.fp_units, c.ldst_units),
    ]);
    t.row(vec![
        "instruction window".to_string(),
        format!("{}", c.window),
    ]);
    t.row(vec![
        "pending ld, st".to_string(),
        format!("{}, {}", c.max_pending_loads, c.max_pending_stores),
    ]);
    t.row(vec![
        "branch penalty".to_string(),
        format!("{} cycles", c.branch_penalty),
    ]);
    println!("{}", t.render());

    let mut t = Table::new(vec!["Memory Parameters", "Value"]);
    t.row(vec![
        "L1, L2 size".to_string(),
        format!("{} KB, {} KB", c.l1.size / 1024, c.l2.size / 1024),
    ]);
    t.row(vec![
        "L1, L2 assoc".to_string(),
        format!("{}-way, {}-way", c.l1.assoc, c.l2.assoc),
    ]);
    t.row(vec![
        "L1, L2 line".to_string(),
        format!("{} B, {} B", c.l1.line, c.l2.line),
    ]);
    t.row(vec![
        "L1, L2 latency".to_string(),
        format!("{}, {} cycles", c.l1.latency, c.l2.latency),
    ]);
    t.row(vec![
        "local memory latency".to_string(),
        format!("{} cycles", c.local_round_trip()),
    ]);
    t.row(vec![
        "2-hop memory latency".to_string(),
        format!("{} cycles", c.remote_round_trip()),
    ]);
    t.row(vec![
        "combine unit".to_string(),
        format!(
            "fp add @ 1/3 clock, pipelined (II={}, lat={})",
            c.combine_init_interval, c.combine_latency
        ),
    ]);
    t.row(vec![
        "reduction fill (PCLR)".to_string(),
        format!("{} cycles, local", c.reduction_fill_latency()),
    ]);
    println!("{}", t.render());

    println!("Latency self-test (measured on the simulator):");
    let mut t = Table::new(vec!["path", "configured", "measured", "status"]);
    let local = measure_local();
    let remote = measure_remote();
    let check = |a: u64, b: u64| if a == b { "ok" } else { "MISMATCH" };
    t.row(vec![
        "local miss round trip".to_string(),
        c.local_round_trip().to_string(),
        local.to_string(),
        check(c.local_round_trip(), local).to_string(),
    ]);
    t.row(vec![
        "2-hop miss round trip".to_string(),
        c.remote_round_trip().to_string(),
        remote.to_string(),
        check(c.remote_round_trip(), remote).to_string(),
    ]);
    println!("{}", t.render());
    assert_eq!(
        local,
        c.local_round_trip(),
        "local latency self-test failed"
    );
    assert_eq!(
        remote,
        c.remote_round_trip(),
        "remote latency self-test failed"
    );
    println!("paper reference: local 104 cycles, 2-hop 297 cycles");
}
