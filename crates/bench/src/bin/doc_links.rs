//! Documentation link checker (CI gate): every relative link and
//! intra-document anchor in the repo's markdown docs must resolve.
//!
//! Scope: `README.md`, `docs/*.md`, `tests/README.md`.  For each
//! `[label](target)` outside fenced code blocks:
//!
//! * `http(s)://` and `mailto:` targets are skipped (offline CI);
//! * `#anchor` targets must match a heading slug in the same file;
//! * relative paths must exist on disk (file or directory), and a
//!   `path.md#anchor` fragment must match a heading slug in that file.
//!
//! Exit status is non-zero with one line per broken link, so the CI step
//! fails loudly instead of letting docs rot.
//!
//! ```text
//! cargo run -p smartapps-bench --bin doc_links
//! ```

use std::path::{Path, PathBuf};

/// A parsed markdown link: line number and target.
struct Link {
    line: usize,
    target: String,
}

/// GitHub-style heading slug: lowercase, backticks stripped, anything
/// that is not alphanumeric/space/hyphen/underscore removed, spaces
/// hyphenated.
fn slugify(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == ' ' || *c == '-' || *c == '_')
        .collect::<String>()
        .to_lowercase()
        .replace(' ', "-")
}

/// Heading slugs of a markdown file (fenced code blocks excluded).
fn heading_slugs(text: &str) -> Vec<String> {
    let mut fenced = false;
    let mut slugs = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if !fenced && line.starts_with('#') {
            slugs.push(slugify(line.trim_start_matches('#')));
        }
    }
    slugs
}

/// Extract `[label](target)` links outside fenced code blocks.
fn extract_links(text: &str) -> Vec<Link> {
    let mut fenced = false;
    let mut links = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                // Walk forward to the closing paren…
                let start = i + 2;
                if let Some(rel_end) = line[start..].find(')') {
                    // …and back to the matching bracket, to reject stray
                    // "](" sequences that are not links.
                    let has_open = line[..i].rfind('[').is_some();
                    if has_open {
                        links.push(Link {
                            line: idx + 1,
                            target: line[start..start + rel_end].to_string(),
                        });
                    }
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    links
}

fn main() {
    // crates/bench/ → workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");

    let mut files: Vec<PathBuf> = vec![root.join("README.md"), root.join("tests/README.md")];
    let docs = root.join("docs");
    if let Ok(entries) = std::fs::read_dir(&docs) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "md") {
                files.push(p);
            }
        }
    }
    files.sort();

    let mut broken: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                broken.push(format!("{}: unreadable: {e}", file.display()));
                continue;
            }
        };
        let own_slugs = heading_slugs(&text);
        for link in extract_links(&text) {
            checked += 1;
            let target = link.target.trim();
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let rel = file.strip_prefix(&root).unwrap_or(file).display();
            if let Some(anchor) = target.strip_prefix('#') {
                if !own_slugs.iter().any(|s| s == anchor) {
                    broken.push(format!("{rel}:{}: broken anchor `#{anchor}`", link.line));
                }
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target, None),
            };
            let resolved = file.parent().unwrap_or(&root).join(path_part);
            if !resolved.exists() {
                broken.push(format!("{rel}:{}: missing target `{target}`", link.line));
                continue;
            }
            if let Some(frag) = fragment {
                if resolved.extension().is_some_and(|x| x == "md") {
                    let other = std::fs::read_to_string(&resolved).unwrap_or_default();
                    if !heading_slugs(&other).iter().any(|s| s == frag) {
                        broken.push(format!(
                            "{rel}:{}: `{path_part}` has no heading `#{frag}`",
                            link.line
                        ));
                    }
                }
            }
        }
    }

    if broken.is_empty() {
        println!(
            "doc_links: {} links across {} files, all resolve",
            checked,
            files.len()
        );
    } else {
        eprintln!("doc_links: {} broken link(s):", broken.len());
        for b in &broken {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
}
