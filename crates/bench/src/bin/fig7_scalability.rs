//! Figure 7 — speedups delivered by the different mechanisms (harmonic
//! mean over the five applications) at 4, 8 and 16 processors.
//!
//! The paper's claim: Hw and Flex scale well, while "the Sw scheme scales
//! poorly.  The time of the merging step in Sw does not decrease when more
//! processors are available.  If the main loop scales well, the merging
//! step limits the achievable speedups according to Amdahl's law."
//!
//! Usage: `fig7_scalability [--scale=1.0] [--seed=7]`

use smartapps_bench::pclr_experiment::run_all_systems;
use smartapps_bench::report::Table;
use smartapps_sim::harmonic_mean;
use smartapps_workloads::table2_rows;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::args()
        .find_map(|a| {
            a.strip_prefix(&format!("--{name}="))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(default)
}

fn main() {
    let scale: f64 = arg("scale", 1.0);
    let seed: u64 = arg("seed", 7);
    let proc_counts = [4usize, 8, 16];
    println!("Figure 7: harmonic-mean speedups vs. processor count (scale {scale})\n");

    // hm[system][procs index]; merge fraction of Sw per proc count.
    let mut hms = [[0.0f64; 3]; 3];
    let mut sw_merge_cycles: Vec<Vec<u64>> = vec![Vec::new(); 3];
    for (pi, &procs) in proc_counts.iter().enumerate() {
        let mut per_sys: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for row in &table2_rows() {
            let (seq, sw, hw, flex) = run_all_systems(row, scale, procs, seed);
            let seqc = seq.stats.total_cycles as f64;
            per_sys[0].push(seqc / sw.stats.total_cycles as f64);
            per_sys[1].push(seqc / hw.stats.total_cycles as f64);
            per_sys[2].push(seqc / flex.stats.total_cycles as f64);
            sw_merge_cycles[pi].push(sw.breakdown.merge);
        }
        for s in 0..3 {
            hms[s][pi] = harmonic_mean(&per_sys[s]);
        }
    }

    let mut t = Table::new(vec![
        "system",
        "4 procs",
        "8 procs",
        "16 procs",
        "paper @16",
    ]);
    for (s, (name, paper)) in [("Sw", "2.7"), ("Hw", "7.6"), ("Flex", "6.4")]
        .into_iter()
        .enumerate()
    {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", hms[s][0]),
            format!("{:.2}", hms[s][1]),
            format!("{:.2}", hms[s][2]),
            paper.to_string(),
        ]);
    }
    println!("{}", t.render());

    // ASCII rendering of the figure.
    println!("speedup");
    let max = hms
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(0.0, f64::max);
    let rows = 12;
    for level in (1..=rows).rev() {
        let y = max * level as f64 / rows as f64;
        let mut line = format!("{y:5.1} |");
        for pi in [0usize, 1, 2] {
            for ch in [0usize, 1, 2] {
                let v = hms[ch][pi];
                line.push_str(if (v - y).abs() <= max / (rows as f64 * 2.0) {
                    match ch {
                        0 => " S",
                        1 => " H",
                        _ => " F",
                    }
                } else {
                    "  "
                });
            }
            line.push_str("   ");
        }
        println!("{line}");
    }
    println!("      +{}", "-".repeat(27));
    println!("          4         8        16   processors   (H = Hw, F = Flex, S = Sw)\n");

    // The Amdahl claim: Sw merge cycles barely move with procs.
    let merge_tot: Vec<u64> = sw_merge_cycles.iter().map(|v| v.iter().sum()).collect();
    println!(
        "Sw merge-phase cycles (sum over apps): 4p = {}, 8p = {}, 16p = {}",
        merge_tot[0], merge_tot[1], merge_tot[2]
    );
    let ratio = merge_tot[0] as f64 / merge_tot[2] as f64;
    println!(
        "merge shrinks only {ratio:.2}x from 4p to 16p (perfect scaling would be 4.0x)\n\
         -> the merging step limits Sw per Amdahl's law, as the paper argues"
    );
    let sw_scaling = hms[0][2] / hms[0][0];
    let hw_scaling = hms[1][2] / hms[1][0];
    println!(
        "scaling 4p->16p: Sw {:.2}x vs Hw {:.2}x (paper shows Sw saturating)",
        sw_scaling, hw_scaling
    );
}
