//! Figure 6 — execution time under the three schemes on a 16-node
//! multiprocessor.
//!
//! For each application, prints the Sw/Hw/Flex bars (Init/Loop/Merge
//! breakdown, normalized to Sw = 1.0) with the speedup over sequential
//! execution above each bar, exactly like the paper's figure, plus the
//! harmonic-mean summary the paper quotes in the text (Sw 2.7, Hw 7.6,
//! Flex 6.4).
//!
//! Usage: `fig6_pclr [--procs=16] [--scale=1.0] [--seed=7]`

use smartapps_bench::pclr_experiment::{run_all_systems, AppResult};
use smartapps_bench::report::{bar, Table};
use smartapps_sim::harmonic_mean;
use smartapps_workloads::table2_rows;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::args()
        .find_map(|a| {
            a.strip_prefix(&format!("--{name}="))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(default)
}

fn main() {
    let procs: usize = arg("procs", 16);
    let scale: f64 = arg("scale", 1.0);
    let seed: u64 = arg("seed", 7);
    println!(
        "Figure 6: execution time under Sw / Hw / Flex, {procs}-node machine (scale {scale})\n"
    );
    type AppSpeedups = (String, f64, f64, f64);
    let mut speedups: Vec<AppSpeedups> = Vec::new();
    let mut table = Table::new(vec![
        "App",
        "System",
        "Speedup",
        "paper",
        "Init",
        "Loop",
        "Merge/Flush",
        "bar (norm. to Sw)",
    ]);
    for row in &table2_rows() {
        let (seq, sw, hw, flex) = run_all_systems(row, scale, procs, seed);
        let sw_total = sw.breakdown.total();
        let seq_cycles = seq.stats.total_cycles;
        let paper = [
            row.fig6_speedups.0,
            row.fig6_speedups.1,
            row.fig6_speedups.2,
        ];
        let mut sps = [0.0f64; 3];
        for (k, r) in [&sw, &hw, &flex].into_iter().enumerate() {
            let sp = seq_cycles as f64 / r.stats.total_cycles as f64;
            sps[k] = sp;
            let frac = |x: u64| x as f64 / sw_total as f64;
            let (i, l, m) = (
                frac(r.breakdown.init),
                frac(r.breakdown.looptime),
                frac(r.breakdown.merge),
            );
            table.row(vec![
                if k == 0 {
                    row.app.to_string()
                } else {
                    String::new()
                },
                sys_name(r).to_string(),
                format!("{sp:.1}"),
                format!("{:.1}", paper[k]),
                format!("{:4.1}%", 100.0 * i),
                format!("{:4.1}%", 100.0 * l),
                format!("{:4.1}%", 100.0 * m),
                bar(i + l + m, 30),
            ]);
        }
        speedups.push((row.app.to_string(), sps[0], sps[1], sps[2]));
    }
    println!("{}", table.render());

    let hm = |f: &dyn Fn(&AppSpeedups) -> f64| {
        harmonic_mean(&speedups.iter().map(f).collect::<Vec<_>>())
    };
    let (sw_hm, hw_hm, flex_hm) = (hm(&|x| x.1), hm(&|x| x.2), hm(&|x| x.3));
    println!("harmonic-mean speedups over sequential ({procs} processors):");
    let mut t = Table::new(vec!["system", "measured", "paper (16p)"]);
    t.row(vec![
        "Sw".to_string(),
        format!("{sw_hm:.1}"),
        "2.7".to_string(),
    ]);
    t.row(vec![
        "Hw".to_string(),
        format!("{hw_hm:.1}"),
        "7.6".to_string(),
    ]);
    t.row(vec![
        "Flex".to_string(),
        format!("{flex_hm:.1}"),
        "6.4".to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "shape checks: Hw > Flex > Sw for every app: {}",
        if speedups.iter().all(|(_, s, h, f)| h > f && f > s) {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "Flex within {:.0}% of Hw on harmonic mean (paper: 16% lower)",
        100.0 * (1.0 - flex_hm / hw_hm)
    );
}

fn sys_name(r: &AppResult) -> &'static str {
    r.system.name()
}
