//! Service throughput driver: jobs/sec under concurrent submission.
//!
//! Spawns `clients` threads that each fire `jobs` reduction jobs at one
//! shared [`Runtime`], for a mix of workload-class sizes, and reports
//! end-to-end jobs/sec plus the dispatcher's batching and profile-hit
//! counters.  Usage:
//!
//! ```text
//! throughput [clients] [jobs-per-client] [workers]
//! ```

use smartapps_runtime::{JobSpec, Runtime, RuntimeConfig};
use smartapps_workloads::{contribution, AccessPattern, Distribution, PatternSpec};
use std::sync::Arc;
use std::time::Instant;

fn pattern(seed: u64, elems: usize, iters: usize) -> Arc<AccessPattern> {
    Arc::new(
        PatternSpec {
            num_elements: elems,
            iterations: iters,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed,
        }
        .generate(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });

    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    }));
    // Three workload classes: tiny (coalescing-bound), medium, large.
    let classes = [
        pattern(1, 512, 1000),
        pattern(2, 8192, 10_000),
        pattern(3, 65_536, 40_000),
    ];

    println!("throughput: {clients} clients x {jobs} jobs on {workers}-wide pool");
    // Warm the profile store so the measured phase is the service's
    // steady state, the regime the paper's amortization argument is about.
    for p in &classes {
        rt.run(JobSpec::f64(p.clone(), |_i, r| contribution(r)));
    }

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = rt.clone();
            let classes = &classes;
            s.spawn(move || {
                let mut pending = Vec::new();
                for j in 0..jobs {
                    let pat = classes[(c + j) % classes.len()].clone();
                    pending.push(rt.submit(JobSpec::f64(pat, |_i, r| contribution(r))));
                    // Keep a small pipeline per client rather than
                    // strict request/response, like a real service load.
                    if pending.len() >= 4 {
                        pending.remove(0).wait();
                    }
                }
                for h in pending {
                    h.wait();
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let total = (clients * jobs) as f64;
    let stats = rt.stats();
    println!("elapsed            {elapsed:>12.3?}");
    println!("jobs/sec           {:>12.1}", total / elapsed.as_secs_f64());
    println!("batches            {:>12}", stats.batches);
    println!(
        "avg batch size     {:>12.2}",
        stats.completed as f64 / stats.batches.max(1) as f64
    );
    println!("coalesced jobs     {:>12}", stats.coalesced);
    println!("profile hits       {:>12}", stats.profile_hits);
    println!("inspections        {:>12}", stats.inspections);
    println!("evictions          {:>12}", stats.evictions);
}
