//! Service throughput driver: the comparison matrix behind the runtime's
//! two scaling axes.
//!
//! **Scenario A — contended multi-shard load (1 vs N dispatchers).**  One
//! client floods a heavy workload class while interactive clients fire
//! small request/response jobs of other classes.  A single dispatcher
//! head-of-line-blocks the interactive classes behind every heavy
//! execution — the single-queue-consumer ceiling; shard-affine
//! dispatchers keep them on their own consumers (stealing into the flood
//! only when idle), so interactive throughput and latency survive the
//! flood.  This holds even on a single core: the win comes from removing
//! the blocking structure, not from adding parallelism.
//!
//! **Scenario B — same-pattern bursts (fused vs per-job).**  Clients fire
//! bursts of K jobs over one pattern with different contribution bodies
//! (a dashboard computing K statistics over one dataset).  Fused sweeps
//! traverse the pattern once per burst instead of K times.
//!
//! **Scenario C — software-only vs PCLR-offload-enabled.**  The same
//! mixed traffic runs against a software-only service and one with the
//! hardware backend enabled (admitted classes route to the simulated
//! PCLR machine).  Two numbers matter: wall throughput — the *simulator*
//! is orders of magnitude slower than native execution, so offloaded wall
//! time is the price of standing in for real hardware — and the per-job
//! **cost sample** (simulated machine time for offloaded jobs), which is
//! what the profile store compares when the schemes compete.
//!
//! **Scenario D — cold vs calibrated decisions.**  The decision model is
//! deliberately mis-calibrated (`hash` priced at 2% of its honest
//! per-reference cost), the regime the online calibration loop exists
//! for: exploration slots measure the schemes the model mis-ranks,
//! profile rechecks re-run decisions under the accumulated corrections,
//! and the matrix shows each class's scheme cold vs calibrated vs after
//! a restart — the flip driven entirely by measured feedback, and kept
//! across the restart by the profile store's `corr` records (see
//! `docs/MODEL.md`).
//!
//! **Scenario E — scalar vs SIMD dense floods.**  The same dense
//! high-reuse flood runs against a scalar-only service (`simd: false`)
//! and one with the vectorized tree-reduction backend enabled, with the
//! calibration loop on.  The SIMD cost terms are priced at zero (the
//! same deterministic-routing device scenario C uses for PCLR) so every
//! feasible dense class routes to the lane-striped kernels, and the
//! matrix reports wall throughput, `simd_offloads`, and the flooded
//! class's mean cost sample side by side with the scalar baseline.
//! Setting `SMARTAPPS_THROUGHPUT_REQUIRE_SIMD=1` turns the run into a
//! CI smoke: it exits non-zero unless the SIMD-enabled service selected
//! [`Scheme::Simd`] at least once.
//!
//! **Scenario F — K-window flood, simplified vs pass-through.**  Clients
//! flood bursts of declared-uniform jobs on one overlapping
//! sliding-window class — the shape the simplification pass lowers to a
//! difference-array plan (O(I + N) instead of O(R) per job; see
//! `docs/MODEL.md`).  The same traffic runs on a service with
//! `simplify` off and one with it on (fusion pinned off on both so the
//! comparison isolates the rewrite), reporting wall jobs/sec and the
//! `simplified_jobs` counter.  Setting
//! `SMARTAPPS_THROUGHPUT_REQUIRE_SIMPLIFY=1` turns the run into a CI
//! smoke: it exits non-zero unless the pass fired and the simplified
//! service ran the flood at ≥ 2x the pass-through rate.
//!
//! Usage:
//!
//! ```text
//! throughput [interactive-clients] [jobs-per-client] [workers] [scenario]
//! ```
//!
//! The optional `scenario` argument (`a`..`f`, or `t` for the telemetry
//! epilogue alone) runs a single scenario — CI uses `e` for the SIMD
//! smoke, `f` for the simplification smoke, and `t` under
//! `SMARTAPPS_TRACE_DUMP=<path>` to produce the trace-ring dump the
//! `trace_attr` bin replays offline (one [`TraceEvent`] per line; see
//! `docs/OBSERVABILITY.md`).
//! Every scenario is measured in the service's steady state (profile
//! store pre-warmed), the regime the paper's amortization argument is
//! about.
//!
//! [`TraceEvent`]: smartapps_telemetry::TraceEvent

use smartapps_reductions::{DecisionModel, ModelParams, Scheme};
use smartapps_runtime::{CalibrationConfig, JobSpec, PclrConfig, Runtime, RuntimeConfig};
use smartapps_workloads::{
    contribution, contribution_i64, AccessPattern, Distribution, PatternSpec,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pattern(
    seed: u64,
    elems: usize,
    iters: usize,
    coverage: f64,
    refs: usize,
) -> Arc<AccessPattern> {
    Arc::new(
        PatternSpec {
            num_elements: elems,
            iterations: iters,
            refs_per_iter: refs,
            coverage,
            dist: Distribution::Uniform,
            seed,
        }
        .generate(),
    )
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Scenario A measurement: interactive jobs/sec and latency percentiles
/// under a heavy-class flood, for a given dispatcher count.
fn flood_run(
    dispatchers: usize,
    workers: usize,
    clients: usize,
    jobs: usize,
) -> (f64, Duration, Duration, u64) {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers,
        shards: 16,
        dispatchers,
        max_fuse: 1,
        ..RuntimeConfig::default()
    }));
    let heavy = pattern(7, 65_536, 60_000, 1.0, 2);
    let light: Vec<Arc<AccessPattern>> = (0..4)
        .map(|s| pattern(100 + s as u64, 256, 600, 1.0, 2))
        .collect();
    // Steady state: every class decided and profiled before measuring.
    rt.run(JobSpec::f64(heavy.clone(), |_i, r| contribution(r)).with_threads(1));
    for p in &light {
        rt.run(JobSpec::f64(p.clone(), |_i, r| contribution(r)).with_threads(1));
    }

    let stop = AtomicBool::new(false);
    let mut latencies: Vec<Duration> = Vec::new();
    let mut measured = Duration::ZERO;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        // The flood: a client keeping a short pipeline of heavy jobs
        // queued until the interactive clients finish.
        let flooder_rt = rt.clone();
        let flooder_heavy = heavy.clone();
        let stop = &stop;
        s.spawn(move || {
            let mut pending = std::collections::VecDeque::new();
            while !stop.load(Ordering::Acquire) {
                pending.push_back(flooder_rt.submit(
                    JobSpec::f64(flooder_heavy.clone(), |_i, r| contribution(r)).with_threads(1),
                ));
                if pending.len() >= 2 {
                    pending.pop_front().unwrap().wait();
                }
            }
            for h in pending {
                h.wait();
            }
        });
        // Interactive clients: strict request/response tiny jobs.
        let mut handles = Vec::new();
        for c in 0..clients {
            let rt = rt.clone();
            let light = &light;
            handles.push(s.spawn(move || {
                let mut lat = Vec::with_capacity(jobs);
                for j in 0..jobs {
                    let pat = light[(c + j) % light.len()].clone();
                    let t = Instant::now();
                    rt.run(JobSpec::f64(pat, |_i, r| contribution(r)).with_threads(1));
                    lat.push(t.elapsed());
                }
                lat
            }));
        }
        for h in handles {
            latencies.extend(h.join().unwrap());
        }
        // Close the measurement window before the flooder drains its
        // pending heavy jobs — that tail is not interactive service time
        // and would deflate the measured rate.
        measured = t0.elapsed();
        stop.store(true, Ordering::Release);
    });
    latencies.sort_unstable();
    let steals = rt.stats().steals;
    (
        latencies.len() as f64 / measured.as_secs_f64(),
        percentile(&latencies, 0.5),
        percentile(&latencies, 0.95),
        steals,
    )
}

/// Scenario B measurement: jobs/sec for bursts of `burst` same-pattern
/// jobs, per-job vs fused, on identical configs.
fn burst_run(
    max_fuse: usize,
    workers: usize,
    clients: usize,
    jobs: usize,
    burst: usize,
) -> (f64, u64) {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers,
        dispatchers: 1,
        max_batch: 32,
        max_fuse,
        ..RuntimeConfig::default()
    }));
    // A dense cache-resident class (the fusion gate routes it per-job —
    // fusing it would lose) and a sparse hash-regime class, where one
    // table probe per reference feeds every fused output and the sweep
    // wins outright.
    let classes = [
        pattern(201, 4096, 8000, 1.0, 2),
        pattern(202, 400_000, 4_000, 0.004, 12),
    ];
    for p in &classes {
        rt.run(JobSpec::f64(p.clone(), |_i, r| contribution(r)).with_threads(1));
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = rt.clone();
            let classes = &classes;
            s.spawn(move || {
                let mut fired = 0usize;
                let mut pending = Vec::new();
                while fired < jobs {
                    let pat = classes[(c + fired / burst) % classes.len()].clone();
                    let n = burst.min(jobs - fired);
                    for _ in 0..n {
                        pending.push(rt.submit(
                            JobSpec::f64(pat.clone(), |_i, r| contribution(r)).with_threads(1),
                        ));
                    }
                    fired += n;
                    while pending.len() >= 2 * burst {
                        pending.remove(0).wait();
                    }
                }
                for h in pending {
                    h.wait();
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let fused_jobs = rt.stats().fused_jobs;
    ((clients * jobs) as f64 / elapsed.as_secs_f64(), fused_jobs)
}

/// Scenario C measurement: mixed small/large traffic on a service with or
/// without the PCLR backend.  Returns wall jobs/sec, offload count, total
/// simulated cycles, and the mean cost sample of the small (offloadable)
/// class.
fn offload_run(
    offload: bool,
    workers: usize,
    clients: usize,
    jobs: usize,
) -> (f64, u64, u64, Duration) {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers,
        dispatchers: 2,
        pclr: offload.then(|| PclrConfig {
            nodes: 4,
            max_sim_refs: 10_000,
            ..PclrConfig::default()
        }),
        // Zero-overhead PCLR calibration: every admitted class offloads,
        // making the software-only vs offload comparison deterministic.
        model: DecisionModel::new(ModelParams {
            pclr_update: 0.0,
            pclr_flush_line: 0.0,
            pclr_offload_fixed: 0.0,
            ..ModelParams::default()
        }),
        ..RuntimeConfig::default()
    }));
    // A small admitted class and a large class that always stays on the
    // software pool (over the admission cap).
    let small = pattern(301, 1024, 1_500, 0.9, 2);
    let large = pattern(302, 65_536, 30_000, 1.0, 2);
    for p in [&small, &large] {
        rt.run(JobSpec::f64(p.clone(), |_i, r| contribution(r)).with_threads(1));
    }
    // The warm-up jobs above are not part of the measured run; report
    // offloads and cycles as deltas from here.
    let warm = rt.stats();
    let small_costs = std::sync::Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = rt.clone();
            let small = small.clone();
            let large = large.clone();
            let small_costs = &small_costs;
            s.spawn(move || {
                let mut mine = Vec::new();
                for j in 0..jobs {
                    let is_small = (c + j) % 4 != 0; // 3:1 small:large mix
                    let pat = if is_small { &small } else { &large };
                    let r =
                        rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)).with_threads(1));
                    if is_small {
                        mine.push(r.elapsed);
                    }
                }
                small_costs.lock().unwrap().extend(mine);
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = rt.stats();
    let costs = small_costs.into_inner().unwrap();
    let mean = costs.iter().sum::<Duration>() / costs.len().max(1) as u32;
    (
        (clients * jobs) as f64 / elapsed.as_secs_f64(),
        stats.pclr_offloads - warm.pclr_offloads,
        stats.sim_cycles - warm.sim_cycles,
        mean,
    )
}

/// Scenario D measurement.  Returns per-class `(name, cold scheme,
/// calibrated scheme, restarted scheme)` plus the final calibration
/// counters `(samples, mean |err|, corr[hash], corr[winner])`.
#[allow(clippy::type_complexity)]
fn calibration_run(
    workers: usize,
) -> (
    Vec<(&'static str, Scheme, Scheme, Scheme)>,
    (u64, f64, f64, f64),
) {
    // The lie: hash's per-reference probe priced at 2% of its honest
    // constant, so dense cache-resident classes — honest rep/ll
    // territory — decide onto hash when cold.
    let lying = || {
        DecisionModel::new(ModelParams {
            hash_per_ref: 0.05,
            hash_merge_elem: 0.5,
            ..ModelParams::default()
        })
    };
    let dir = std::env::temp_dir().join("smartapps-throughput-bench");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("calibration-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // One class the lie clearly mis-routes (dense, high reuse: honest
    // rep/ll territory) and one where hash already wins the *honest*
    // analytic ranking (SPICE-sparse) — though the loop follows the
    // measurements wherever they lead, not our expectations.
    let classes: [(&'static str, Arc<AccessPattern>); 2] = [
        ("dense-reuse", pattern(401, 4096, 40_000, 1.0, 2)),
        ("sparse-spice", pattern(402, 200_000, 600, 0.08, 28)),
    ];
    // Fresh same-domain variants (different iteration bucket → different
    // signature) probe what a *decision* — not a profile hit — picks.
    let variants: [Arc<AccessPattern>; 2] = [
        pattern(403, 4096, 25_000, 1.0, 2),
        pattern(404, 200_000, 380, 0.08, 28),
    ];

    let mut cold = Vec::new();
    let mut calibrated = Vec::new();
    let stats_out;
    {
        let rt = Runtime::new(RuntimeConfig {
            workers,
            dispatchers: 1,
            model: lying(),
            calibration: CalibrationConfig {
                explore_every: 3,
                recheck_every: 4,
                probe_fused_every: 0,
            },
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        });
        for (_, pat) in &classes {
            cold.push(
                rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)))
                    .scheme,
            );
        }
        // The measured traffic the loop corrects from: profile hits keep
        // reporting samples, exploration slots measure the mis-ranked
        // schemes, rechecks flip entries once corrections disagree.
        for _ in 0..30 {
            for (_, pat) in &classes {
                rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)));
            }
        }
        for (_, pat) in &classes {
            calibrated.push(
                rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)))
                    .scheme,
            );
        }
        let s = rt.stats();
        let domain = smartapps_core::toolbox::DomainKey::of(
            &smartapps_workloads::PatternChars::measure(&classes[0].1),
        );
        stats_out = (
            s.calibration_updates,
            s.mean_abs_prediction_error(),
            rt.correction(Scheme::Hash, domain, false),
            rt.correction(calibrated[0], domain, false),
        );
        rt.shutdown();
    }
    // Restart with active sampling off: decisions for never-profiled
    // same-domain classes come from the persisted corrections alone.
    let mut restarted = Vec::new();
    {
        let rt = Runtime::new(RuntimeConfig {
            workers,
            dispatchers: 1,
            model: lying(),
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        });
        for pat in &variants {
            restarted.push(
                rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)))
                    .scheme,
            );
        }
    }
    let _ = std::fs::remove_file(&path);
    let rows = classes
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (*name, cold[i], calibrated[i], restarted[i]))
        .collect();
    (rows, stats_out)
}

/// Scenario E measurement: a dense high-reuse flood on a scalar-only
/// service vs one with the SIMD backend enabled.  Returns wall jobs/sec,
/// the `simd_offloads` delta over the measured window, the calibration
/// sample count, and the flooded class's mean cost sample.
fn simd_flood_run(
    simd: bool,
    workers: usize,
    clients: usize,
    jobs: usize,
) -> (f64, u64, u64, Duration) {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers,
        dispatchers: 2,
        simd,
        // Zero-priced SIMD terms: every feasible dense class routes to
        // the vectorized kernels, making the scalar vs SIMD comparison
        // deterministic (scenario C's device, applied to `simd`).  The
        // calibration loop stays on and records both sides' measured
        // costs.
        model: DecisionModel::new(ModelParams {
            simd_update: 0.0,
            simd_init_elem: 0.0,
            simd_merge_elem: 0.0,
            ..ModelParams::default()
        }),
        calibration: CalibrationConfig {
            explore_every: 0,
            recheck_every: 4,
            probe_fused_every: 0,
        },
        max_fuse: 1,
        ..RuntimeConfig::default()
    }));
    // Dense, cache-resident, high reuse (r/p far above the per-element
    // count): the regime the lane-striped kernels exist for.  Two seeds
    // of the same class keep both dispatchers busy.
    let floods: Vec<Arc<AccessPattern>> = (0..2)
        .map(|s| pattern(601 + s as u64, 2048, 30_000, 1.0, 2))
        .collect();
    for p in &floods {
        rt.run(JobSpec::f64(p.clone(), |_i, r| contribution(r)).with_threads(1));
    }
    let warm = rt.stats();
    let costs = std::sync::Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rt = rt.clone();
            let floods = &floods;
            let costs = &costs;
            s.spawn(move || {
                let mut mine = Vec::with_capacity(jobs);
                for j in 0..jobs {
                    let pat = floods[(c + j) % floods.len()].clone();
                    let r = rt.run(JobSpec::f64(pat, |_i, r| contribution(r)).with_threads(1));
                    mine.push(r.elapsed);
                }
                costs.lock().unwrap().extend(mine);
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = rt.stats();
    let costs = costs.into_inner().unwrap();
    let mean = costs.iter().sum::<Duration>() / costs.len().max(1) as u32;
    (
        (clients * jobs) as f64 / elapsed.as_secs_f64(),
        stats.simd_offloads - warm.simd_offloads,
        stats.calibration_updates,
        mean,
    )
}

/// Scenario F measurement: bursts of declared-uniform jobs on one
/// overlapping sliding-window class, with the simplification pass on or
/// off.  Returns wall jobs/sec and the `simplified_jobs` counter.
fn simplify_flood_run(simplify: bool, workers: usize, clients: usize, jobs: usize) -> (f64, u64) {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers,
        dispatchers: 1,
        max_batch: 32,
        // Fusion pinned off on both sides: the pass-through baseline is
        // the per-job reference walk, so the measured ratio is the
        // rewrite's O(I + N) vs O(R) and nothing else.
        max_fuse: 1,
        // Signature sampling is per-submit and O(sample_iters x width);
        // at the default 2048 it re-reads most of this wide pattern on
        // every submission and swamps the execution-side difference the
        // scenario exists to measure.  Both sides run the same window.
        sample_iters: 256,
        simplify,
        ..RuntimeConfig::default()
    }));
    // One recognized class: 4096 iterations x 128-wide overlapping
    // windows over 2048 elements — 524 288 walked references against a
    // rewritten plan of 4096 + 2048 + 1 ops.
    let (n, iters, width, stride) = (2048usize, 4096usize, 128usize, 3usize);
    let rows: Vec<Vec<u32>> = (0..iters)
        .map(|i| {
            let lo = (i * stride) % (n - width + 1);
            (lo as u32..(lo + width) as u32).collect()
        })
        .collect();
    let pat = Arc::new(AccessPattern::from_iters(n, &rows));
    let body = |i: usize, _r: usize| contribution_i64(i);
    // Steady state: decided, profiled, and (when on) the verdict cached.
    rt.run(
        JobSpec::i64(pat.clone(), body)
            .with_uniform_body(true)
            .with_threads(1),
    );
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            let rt = rt.clone();
            let pat = pat.clone();
            s.spawn(move || {
                // The whole flood up front: this measures the engine's
                // drain rate, not the client round-trip.
                let specs: Vec<_> = (0..jobs)
                    .map(|_| {
                        JobSpec::i64(pat.clone(), body)
                            .with_uniform_body(true)
                            .with_threads(1)
                    })
                    .collect();
                for h in rt.submit_batch(specs) {
                    h.wait();
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let simplified = rt.stats().simplified_jobs;
    ((clients * jobs) as f64 / elapsed.as_secs_f64(), simplified)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
    });
    let scenario: Option<char> = args
        .next()
        .and_then(|a| a.chars().next())
        .map(|c| c.to_ascii_lowercase());
    let run = |c: char| scenario.is_none() || scenario == Some(c);
    let n_dispatchers = 4usize;

    if run('a') {
        println!(
            "scenario A: heavy-class flood vs {clients} interactive clients x {jobs} tiny jobs \
             ({workers}-wide pool)"
        );
        let mut rates = Vec::new();
        for dispatchers in [1usize, n_dispatchers] {
            let (rate, p50, p95, steals) = flood_run(dispatchers, workers, clients, jobs);
            println!(
                "  {dispatchers} dispatcher(s): {rate:>9.0} interactive jobs/s   \
                 p50 {p50:>10.3?}  p95 {p95:>10.3?}  steals {steals}"
            );
            rates.push(rate);
        }
        println!(
            "  => {n_dispatchers} dispatchers / 1 dispatcher = {:.2}x interactive throughput\n",
            rates[1] / rates[0]
        );
    }

    if run('b') {
        println!("scenario B: same-pattern bursts of 8 ({clients} clients x {jobs} jobs)");
        let mut rates = Vec::new();
        for max_fuse in [1usize, 8] {
            let (rate, fused_jobs) = burst_run(max_fuse, workers, clients, jobs, 8);
            println!(
                "  {:<26} {rate:>9.0} jobs/s   fused jobs {fused_jobs}",
                if max_fuse == 1 {
                    "per-job execution:"
                } else {
                    "fused sweeps (max_fuse 8):"
                }
            );
            rates.push(rate);
        }
        println!("  => fused / per-job = {:.2}x\n", rates[1] / rates[0]);
    }

    if run('c') {
        let c_jobs = (jobs / 6).max(20);
        println!(
            "scenario C: software-only vs PCLR offload ({clients} clients x {c_jobs} mixed jobs)"
        );
        for offload in [false, true] {
            let (rate, offloads, cycles, mean) = offload_run(offload, workers, clients, c_jobs);
            println!(
                "  {:<26} {rate:>9.0} jobs/s   offloads {offloads:>5}  sim cycles {cycles:>12}  \
                 mean small-class cost {mean:>10.3?}",
                if offload {
                    "offload-enabled:"
                } else {
                    "software-only:"
                }
            );
        }
        println!(
            "  (offloaded cost samples are simulated machine time — the hardware's own cost \
             model — while wall throughput pays the simulator's slowdown)\n"
        );
    }

    if run('d') {
        println!(
            "scenario D: cold vs calibrated decisions (hash_per_ref lied 50x low; \
             explore every 3rd batch, recheck every 4th hit)"
        );
        let (rows, (samples, mean_err, corr_hash, corr_winner)) = calibration_run(workers);
        println!(
            "  {:<14} {:>6}   {:>10}   {:>22}",
            "class", "cold", "calibrated", "after-restart (fresh)"
        );
        let mut flipped = 0;
        for (name, cold, calibrated, restarted) in &rows {
            println!(
                "  {name:<14} {:>6}   {:>10}   {:>22}",
                cold.to_string(),
                calibrated.to_string(),
                restarted.to_string()
            );
            flipped += usize::from(cold != calibrated);
        }
        println!(
            "  calibration: {samples} samples, mean |err| {mean_err:.3}, \
             corr[hash] {corr_hash:.2}x vs corr[winner] {corr_winner:.2}x"
        );
        println!(
            "  => {flipped} class(es) re-routed by measured feedback; the restart column \
             decides never-profiled signatures from persisted corr records alone\n"
        );
    }

    if run('e') {
        println!(
            "scenario E: scalar vs SIMD dense flood ({clients} clients x {jobs} dense jobs, \
             calibration on)"
        );
        let mut simd_selected = 0u64;
        for simd in [false, true] {
            let (rate, offloads, samples, mean) = simd_flood_run(simd, workers, clients, jobs);
            println!(
                "  {:<26} {rate:>9.0} jobs/s   simd offloads {offloads:>5}  \
                 calibration samples {samples:>5}  mean flood-class cost {mean:>10.3?}",
                if simd {
                    "simd-enabled:"
                } else {
                    "scalar-only:"
                }
            );
            if simd {
                simd_selected = offloads;
            }
        }
        println!(
            "  (both services run the identical model; the scalar service masks `simd` like \
             infeasible `lw` and falls back to the software ranking)\n"
        );
        if std::env::var("SMARTAPPS_THROUGHPUT_REQUIRE_SIMD").is_ok_and(|v| v == "1") {
            assert!(
                simd_selected > 0,
                "smoke: the SIMD-enabled dense flood never selected Scheme::Simd"
            );
            println!("  smoke OK: Scheme::Simd selected {simd_selected} times\n");
        }
    }

    if run('f') {
        println!(
            "scenario F: K-window flood, simplified vs pass-through \
             ({clients} clients x {jobs} declared-uniform window jobs, fusion off)"
        );
        let mut rates = Vec::new();
        let mut simplified = 0u64;
        for simplify in [false, true] {
            let (rate, n) = simplify_flood_run(simplify, workers, clients, jobs);
            println!(
                "  {:<26} {rate:>9.0} jobs/s   simplified jobs {n:>6}",
                if simplify {
                    "simplify-enabled:"
                } else {
                    "pass-through:"
                }
            );
            rates.push(rate);
            if simplify {
                simplified = n;
            }
        }
        println!(
            "  => simplified / pass-through = {:.2}x\n",
            rates[1] / rates[0]
        );
        if std::env::var("SMARTAPPS_THROUGHPUT_REQUIRE_SIMPLIFY").is_ok_and(|v| v == "1") {
            assert!(
                simplified > 0,
                "smoke: the simplify-enabled flood never took the rewrite"
            );
            assert!(
                rates[1] >= 2.0 * rates[0],
                "smoke: the rewrite must run the window flood at >= 2x \
                 (got {:.2}x)",
                rates[1] / rates[0]
            );
            println!(
                "  smoke OK: {simplified} jobs rewritten, {:.2}x over pass-through\n",
                rates[1] / rates[0]
            );
        }
    }

    if !run('t') {
        return;
    }

    // Telemetry epilogue: the same mixed traffic once more on a fresh
    // service, then the per-scheme execute-latency quantiles its
    // telemetry registry accumulated (the distributions `stats v2` and
    // `metrics` expose over the wire; docs/OBSERVABILITY.md).
    println!("\nper-scheme execute-latency quantiles (telemetry registry, mixed rerun)");
    let rt = Runtime::new(RuntimeConfig {
        workers,
        dispatchers: 2,
        ..RuntimeConfig::default()
    });
    let mix = [
        pattern(501, 4096, 8_000, 1.0, 2),
        pattern(502, 400_000, 4_000, 0.004, 12),
        pattern(503, 200_000, 600, 0.08, 28),
        pattern(504, 256, 600, 1.0, 2),
    ];
    for round in 0..8 {
        for p in &mix {
            rt.run(JobSpec::f64(p.clone(), |_i, r| contribution(r)).with_threads(1 + round % 2));
        }
    }
    let ns = |v: u64| Duration::from_nanos(v);
    for h in rt.telemetry().registry().summaries() {
        if h.name == smartapps_runtime::telemetry::EXEC_NS {
            println!(
                "  {:<5} count {:>4}  p50 {:>10.3?}  p95 {:>10.3?}  p99 {:>10.3?}  max {:>10.3?}",
                h.label_value,
                h.count,
                ns(h.p50),
                ns(h.p95),
                ns(h.p99),
                ns(h.max),
            );
        }
    }

    // Offline attribution feed: with `SMARTAPPS_TRACE_DUMP` set, the
    // epilogue's trace-ring snapshot is written one event per line for
    // the `trace_attr` bin to replay into per-class stage waterfalls.
    if let Ok(path) = std::env::var("SMARTAPPS_TRACE_DUMP") {
        let trace = rt.telemetry().trace();
        let events = trace.snapshot();
        let mut dump = String::from(
            "# smartapps trace dump v1: signature submitted_ns queued_ns decided_ns \
             executed_ns completed_ns scheme backend error fused simplify_ns\n",
        );
        for e in &events {
            dump.push_str(&e.to_line());
            dump.push('\n');
        }
        std::fs::write(&path, dump)
            .unwrap_or_else(|err| panic!("writing trace dump {path}: {err}"));
        println!(
            "\ntrace dump: {} retained events ({} recorded, {} dropped) -> {path}",
            events.len(),
            trace.recorded(),
            trace.dropped()
        );
    }
}
