//! Plain-text table formatting for the harness binaries.

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.len());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = width[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio as a speedup with two decimals.
pub fn speedup(seq_cycles: u64, cycles: u64) -> f64 {
    seq_cycles as f64 / cycles.max(1) as f64
}

/// Render a unicode bar of `frac` (0..=1) out of `width` cells.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!(
        "{}{}",
        "█".repeat(filled),
        "·".repeat(width.saturating_sub(filled))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["app", "speedup"]);
        t.row(vec!["Euler", "1.30"]);
        t.row(vec!["Nbf", "15.60"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("app"));
        assert!(lines[2].ends_with("1.30"));
        assert!(lines[3].ends_with("15.60"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn speedup_and_bar() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(bar(0.5, 10).chars().filter(|&c| c == '█').count(), 5);
        assert_eq!(bar(2.0, 4), "████");
        assert_eq!(bar(-1.0, 4), "····");
    }
}
