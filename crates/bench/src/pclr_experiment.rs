//! The PCLR simulation experiment runner shared by the Table 2 / Figure 6
//! / Figure 7 harnesses.
//!
//! Each application row of Table 2 is lowered to per-processor traces and
//! run on the simulated CC-NUMA under four systems:
//!
//! * `Seq`  — one processor, direct updates, all data local;
//! * `Sw`   — software-only replicated-array reduction (Init/Loop/Merge);
//! * `Hw`   — PCLR with the hardwired directory controller;
//! * `Flex` — PCLR with the programmable (MAGIC-like) controller.
//!
//! Simulations can be scaled: `scale` < 1.0 simulates the leading fraction
//! of the loop's iterations (the reduction array keeps its full dimension,
//! so cache behaviour per iteration is preserved; only the loop phase
//! shortens).  The scale used is reported alongside every result.

use smartapps_sim::{Machine, MachineConfig, PhaseBreakdown, RunStats};
use smartapps_workloads::tracegen::{traces_for, SimScheme, TraceParams};
use smartapps_workloads::{AccessPattern, Table2Row};
use std::sync::Arc;

/// Which simulated system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSystem {
    /// Sequential baseline on a single-node machine.
    Seq,
    /// Software-only scheme on the Table 1 machine.
    Sw,
    /// PCLR with the hardwired controller.
    Hw,
    /// PCLR with the programmable controller.
    Flex,
}

impl SimSystem {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SimSystem::Seq => "Seq",
            SimSystem::Sw => "Sw",
            SimSystem::Hw => "Hw",
            SimSystem::Flex => "Flex",
        }
    }
}

/// Result of one (application, system, processor-count) simulation.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Application name.
    pub app: &'static str,
    /// System simulated.
    pub system: SimSystem,
    /// Processor count.
    pub procs: usize,
    /// Iterations simulated (after scaling).
    pub iters: usize,
    /// Full simulation statistics.
    pub stats: RunStats,
    /// Init/Loop/Merge wall-cycle breakdown.
    pub breakdown: PhaseBreakdown,
}

impl AppResult {
    /// Total cycles of the phases of interest.
    pub fn cycles(&self) -> u64 {
        self.breakdown.total().max(1)
    }
}

/// Build the (scaled) access pattern for a Table 2 row.
pub fn scaled_pattern(row: &Table2Row, scale: f64, seed: u64) -> Arc<AccessPattern> {
    assert!(scale > 0.0 && scale <= 1.0);
    let iters = ((row.iters_per_invocation as f64 * scale).round() as usize).max(64);
    Arc::new(row.pattern(iters, seed))
}

/// Trace parameters for a Table 2 row.
pub fn params_for(row: &Table2Row) -> TraceParams {
    let (work_int, work_fp) = row.work_per_iter();
    TraceParams {
        work_int,
        work_fp,
        ..TraceParams::default()
    }
}

/// Run one application under one system.
pub fn run_app(
    row: &Table2Row,
    pat: &Arc<AccessPattern>,
    system: SimSystem,
    procs: usize,
) -> AppResult {
    let params = params_for(row);
    let (cfg, scheme) = match system {
        SimSystem::Seq => (MachineConfig::table1(1), SimScheme::Seq),
        SimSystem::Sw => (MachineConfig::table1(procs), SimScheme::Sw),
        SimSystem::Hw => (MachineConfig::table1(procs), SimScheme::Pclr),
        SimSystem::Flex => (MachineConfig::flex(procs), SimScheme::Pclr),
    };
    let nprocs = if system == SimSystem::Seq { 1 } else { procs };
    let traces = traces_for(scheme, pat, nprocs, params);
    let mut machine = Machine::new(cfg, traces);
    let stats = machine.run();
    let breakdown = stats.breakdown();
    AppResult {
        app: row.app,
        system,
        procs: nprocs,
        iters: pat.num_iterations(),
        stats,
        breakdown,
    }
}

/// Run an application under Seq/Sw/Hw/Flex at one processor count,
/// returning `(seq, sw, hw, flex)`.
pub fn run_all_systems(
    row: &Table2Row,
    scale: f64,
    procs: usize,
    seed: u64,
) -> (AppResult, AppResult, AppResult, AppResult) {
    let pat = scaled_pattern(row, scale, seed);
    (
        run_app(row, &pat, SimSystem::Seq, procs),
        run_app(row, &pat, SimSystem::Sw, procs),
        run_app(row, &pat, SimSystem::Hw, procs),
        run_app(row, &pat, SimSystem::Flex, procs),
    )
}

/// Default per-application simulation scale: chosen so the full Figure 6
/// run finishes in a few minutes while every loop still streams far more
/// data than the caches hold.
pub fn default_scale(row: &Table2Row) -> f64 {
    match row.app {
        "Nbf" => 0.05,    // 128k iters x 1880 instr is the heavyweight
        "Charmm" => 0.10, // 82,944 x 420
        "Equake" => 0.25, // 30,169 x 550
        "Euler" => 0.25,  // 59,863 x 118
        _ => 1.0,         // Vml runs in full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::table2_rows;

    #[test]
    fn vml_full_run_has_expected_shape() {
        // Vml is small enough to simulate in full in a unit test.
        let rows = table2_rows();
        let vml = rows.iter().find(|r| r.app == "Vml").unwrap();
        let (seq, sw, hw, flex) = run_all_systems(vml, 1.0, 4, 7);
        let sp = |r: &AppResult| seq.stats.total_cycles as f64 / r.stats.total_cycles as f64;
        let (s_sw, s_hw, s_flex) = (sp(&sw), sp(&hw), sp(&flex));
        assert!(s_hw > s_sw, "Hw {s_hw:.2} must beat Sw {s_sw:.2}");
        assert!(s_hw >= s_flex, "Hw {s_hw:.2} must be >= Flex {s_flex:.2}");
        assert!(s_flex > s_sw, "Flex {s_flex:.2} must beat Sw {s_sw:.2}");
        // PCLR has no Init phase; the software scheme does.
        assert_eq!(hw.breakdown.init, 0);
        assert!(sw.breakdown.init > 0);
        // The software merge is a real fraction of its time.
        assert!(sw.breakdown.merge > 0);
    }

    #[test]
    fn scaled_pattern_keeps_dimension() {
        let rows = table2_rows();
        let nbf = rows.iter().find(|r| r.app == "Nbf").unwrap();
        let pat = scaled_pattern(nbf, 0.01, 1);
        assert_eq!(pat.num_elements, nbf.num_elements());
        assert!(pat.num_iterations() < nbf.iters_per_invocation / 50);
    }
}
