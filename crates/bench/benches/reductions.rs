//! Criterion benches for the software reduction library: every scheme on
//! the three canonical pattern shapes (dense reuse / moderate sparse /
//! ultra sparse), plus the inspector itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartapps_reductions::{run_scheme, Inspector, Scheme};
use smartapps_workloads::{contribution, AccessPattern, Distribution, PatternSpec};

fn patterns() -> Vec<(&'static str, AccessPattern)> {
    vec![
        (
            "dense_reuse",
            PatternSpec {
                num_elements: 16_384,
                iterations: 200_000,
                refs_per_iter: 2,
                coverage: 1.0,
                dist: Distribution::Uniform,
                seed: 1,
            }
            .generate(),
        ),
        (
            "moderate_sparse",
            PatternSpec {
                num_elements: 262_144,
                iterations: 50_000,
                refs_per_iter: 2,
                coverage: 0.06,
                dist: Distribution::Uniform,
                seed: 2,
            }
            .generate(),
        ),
        (
            "ultra_sparse",
            PatternSpec {
                num_elements: 1_000_000,
                iterations: 2_000,
                refs_per_iter: 4,
                coverage: 0.002,
                dist: Distribution::Uniform,
                seed: 3,
            }
            .generate(),
        ),
    ]
}

fn bench_schemes(c: &mut Criterion) {
    let threads = 4;
    for (name, pat) in patterns() {
        let insp = Inspector::analyze(&pat, threads);
        let mut group = c.benchmark_group(format!("schemes/{name}"));
        group.sample_size(12);
        group.bench_function("seq", |b| {
            b.iter(|| run_scheme(Scheme::Seq, &pat, &|_i, r| contribution(r), 1, None))
        });
        for scheme in Scheme::all_parallel() {
            group.bench_with_input(
                BenchmarkId::from_parameter(scheme.abbrev()),
                &scheme,
                |b, &s| {
                    b.iter(|| run_scheme(s, &pat, &|_i, r| contribution(r), threads, Some(&insp)))
                },
            );
        }
        group.finish();
    }
}

fn bench_inspector(c: &mut Criterion) {
    let pat = PatternSpec {
        num_elements: 100_000,
        iterations: 500_000,
        refs_per_iter: 2,
        coverage: 0.25,
        dist: Distribution::Uniform,
        seed: 4,
    }
    .generate();
    let mut group = c.benchmark_group("inspector");
    group.sample_size(15);
    group.bench_function("full_analyze_1M_refs", |b| {
        b.iter(|| Inspector::analyze(&pat, 8))
    });
    group.bench_function("conflicts_only", |b| {
        b.iter(|| Inspector::conflicts(&pat, 8))
    });
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_inspector);
criterion_main!(benches);
