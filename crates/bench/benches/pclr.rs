//! Criterion benches for the CC-NUMA simulator: event-loop throughput on
//! the three simulated systems (the practical limit on how large a
//! workload the harnesses can replay).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smartapps_bench::pclr_experiment::{params_for, scaled_pattern};
use smartapps_sim::{Machine, MachineConfig};
use smartapps_workloads::table2_rows;
use smartapps_workloads::tracegen::{traces_for, SimScheme};

fn bench_sim_throughput(c: &mut Criterion) {
    let rows = table2_rows();
    let vml = rows.iter().find(|r| r.app == "Vml").unwrap();
    let pat = scaled_pattern(vml, 1.0, 7);
    let params = params_for(vml);
    // Instruction volume per run (measured once) for throughput units.
    let instr = {
        let traces = traces_for(SimScheme::Seq, &pat, 1, params);
        let mut m = Machine::new(MachineConfig::table1(1), traces);
        m.run().counters.instructions
    };
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(instr));
    group.bench_function("seq_1node", |b| {
        b.iter(|| {
            let traces = traces_for(SimScheme::Seq, &pat, 1, params);
            let mut m = Machine::new(MachineConfig::table1(1), traces);
            m.run().total_cycles
        })
    });
    group.bench_function("sw_16node", |b| {
        b.iter(|| {
            let traces = traces_for(SimScheme::Sw, &pat, 16, params);
            let mut m = Machine::new(MachineConfig::table1(16), traces);
            m.run().total_cycles
        })
    });
    group.bench_function("pclr_hw_16node", |b| {
        b.iter(|| {
            let traces = traces_for(SimScheme::Pclr, &pat, 16, params);
            let mut m = Machine::new(MachineConfig::table1(16), traces);
            m.run().total_cycles
        })
    });
    group.bench_function("pclr_flex_16node", |b| {
        b.iter(|| {
            let traces = traces_for(SimScheme::Pclr, &pat, 16, params);
            let mut m = Machine::new(MachineConfig::flex(16), traces);
            m.run().total_cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
