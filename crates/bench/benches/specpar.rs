//! Criterion benches for speculative parallelization: LRPD overhead on a
//! parallel loop, R-LRPD on partially parallel loops with the dependence
//! placed early vs late (the asymmetry the R-LRPD theorem exploits), and
//! feedback-guided scheduling convergence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartapps_specpar::lrpd::{lrpd_execute, run_sequential, SpecAccess};
use smartapps_specpar::rlrpd::rlrpd_execute;
use smartapps_specpar::FgbsScheduler;

const N: usize = 200_000;
const ITERS: usize = 100_000;

fn parallel_body(i: usize, ctx: &mut dyn SpecAccess) {
    ctx.write((i * 48_271) % N, (i as f64).sqrt());
    ctx.reduce(N - 1, 1.0);
}

fn bench_lrpd(c: &mut Criterion) {
    let mut group = c.benchmark_group("lrpd");
    group.sample_size(10);
    group.bench_function("sequential_baseline", |b| {
        b.iter(|| {
            let mut data = vec![0.0f64; N];
            run_sequential(&mut data, 0..ITERS, &parallel_body);
            data
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("speculative", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mut data = vec![0.0f64; N];
                    let r = lrpd_execute(&mut data, ITERS, t, &parallel_body);
                    assert!(r.succeeded);
                    data
                })
            },
        );
    }
    group.finish();
}

fn bench_rlrpd(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlrpd");
    group.sample_size(10);
    // One flow dependence planted at varying loop positions.
    for (name, dep_at) in [
        ("dep_at_25pct", ITERS / 4),
        ("dep_at_90pct", ITERS * 9 / 10),
    ] {
        group.bench_function(name, |b| {
            let body = move |i: usize, ctx: &mut dyn SpecAccess| {
                if i == dep_at {
                    let v = ctx.read(0);
                    ctx.write(1, v + 1.0);
                } else if i == 5 {
                    ctx.write(0, 3.0);
                } else {
                    ctx.write(2 + (i % (N - 2)), i as f64);
                }
            };
            b.iter(|| {
                let mut data = vec![0.0f64; N];
                rlrpd_execute(&mut data, ITERS, 4, &body);
                data
            })
        });
    }
    group.finish();
}

fn bench_fgbs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fgbs");
    group.sample_size(10);
    // Triangular workload: equal-iteration blocks are maximally imbalanced.
    let work = |i: usize| {
        let mut acc = 0u64;
        for k in 0..(i / 64) {
            acc = acc.wrapping_add(k as u64);
        }
        std::hint::black_box(acc);
    };
    group.bench_function("static_blocks", |b| {
        b.iter(|| {
            let mut s = FgbsScheduler::new(40_000, 4);
            s.run_invocation(work)
        })
    });
    group.bench_function("after_feedback", |b| {
        // Converge once outside the timed loop, then measure steady state.
        let mut s = FgbsScheduler::new(40_000, 4);
        for _ in 0..3 {
            s.run_invocation(work);
        }
        b.iter(|| s.run_invocation(work))
    });
    group.finish();
}

criterion_group!(benches, bench_lrpd, bench_rlrpd, bench_fgbs);
criterion_main!(benches);
