//! Criterion benches for the adaptive runtime: what adaptivity costs and
//! what it buys.  Compares the adaptive executor (steady state, inspector
//! amortized) against the best and worst fixed schemes on the same
//! workload.

use criterion::{criterion_group, criterion_main, Criterion};
use smartapps_core::adaptive::AdaptiveReduction;
use smartapps_reductions::{rank_schemes, run_scheme, Inspector};
use smartapps_workloads::{contribution, Distribution, PatternSpec};

fn bench_adaptive_vs_fixed(c: &mut Criterion) {
    let threads = 4;
    let pat = PatternSpec {
        num_elements: 100_000,
        iterations: 150_000,
        refs_per_iter: 2,
        coverage: 0.25,
        dist: Distribution::Uniform,
        seed: 5,
    }
    .generate();
    let body = |_i: usize, r: usize| contribution(r);

    // Determine the measured best/worst fixed schemes once.
    let (ranking, _) = rank_schemes(&pat, &body, threads, false, 3);
    let best = ranking.first().unwrap().scheme;
    let worst = ranking.last().unwrap().scheme;
    let insp = Inspector::analyze(&pat, threads);

    let mut group = c.benchmark_group("adaptive");
    group.sample_size(10);
    group.bench_function(format!("fixed_best_{best}"), |b| {
        b.iter(|| run_scheme(best, &pat, &body, threads, Some(&insp)))
    });
    group.bench_function(format!("fixed_worst_{worst}"), |b| {
        b.iter(|| run_scheme(worst, &pat, &body, threads, Some(&insp)))
    });
    group.bench_function("adaptive_steady_state", |b| {
        let mut smart = AdaptiveReduction::new(1, threads, false);
        smart.execute(&pat, &body); // pay the inspector once
        b.iter(|| smart.execute(&pat, &body).0)
    });
    group.bench_function("adaptive_cold_start", |b| {
        b.iter(|| {
            let mut smart = AdaptiveReduction::new(2, threads, false);
            smart.execute(&pat, &body).0
        })
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive_vs_fixed);
criterion_main!(benches);
