//! Pooled vs per-call-spawn execution: the bench behind the runtime
//! crate's reason to exist.  Repeated reduction invocations on the
//! persistent worker pool must beat the same schemes on freshly spawned
//! threads — most dramatically for small patterns, where thread creation
//! dominates the loop body.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartapps_reductions::{run_scheme_on, Inspector, Scheme, SpawnExecutor};
use smartapps_runtime::WorkerPool;
use smartapps_workloads::{contribution, Distribution, PatternSpec};

const THREADS: usize = 4;

fn pattern(elems: usize, iters: usize) -> smartapps_workloads::AccessPattern {
    PatternSpec {
        num_elements: elems,
        iterations: iters,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: Distribution::Uniform,
        seed: 42,
    }
    .generate()
}

fn bench_pool_vs_spawn(c: &mut Criterion) {
    let body = |_i: usize, r: usize| contribution(r);
    let pool = WorkerPool::new(THREADS);
    for (name, elems, iters) in [
        ("small", 256usize, 500usize),
        ("medium", 4096, 8000),
        ("large", 65_536, 60_000),
    ] {
        let pat = pattern(elems, iters);
        let insp = Inspector::analyze(&pat, THREADS);
        let mut group = c.benchmark_group(format!("runtime/{name}"));
        group.sample_size(12);
        for scheme in [Scheme::Rep, Scheme::Hash] {
            group.bench_with_input(BenchmarkId::new("spawn", scheme.abbrev()), &pat, |b, p| {
                b.iter(|| run_scheme_on(scheme, p, &body, THREADS, Some(&insp), &SpawnExecutor))
            });
            group.bench_with_input(BenchmarkId::new("pool", scheme.abbrev()), &pat, |b, p| {
                b.iter(|| run_scheme_on(scheme, p, &body, THREADS, Some(&insp), &pool))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_pool_vs_spawn);
criterion_main!(benches);
