//! Contention behaviour of the simulated machine: combine-unit
//! saturation, network-port serialization, directory-controller occupancy
//! and placement-policy effects.  These are the mechanisms whose modeling
//! the paper calls out ("contention is accurately modeled in the entire
//! system, except in the network, where it is modeled only at the source
//! and destination ports").

use smartapps_sim::addr::{regions, to_shadow};
use smartapps_sim::directory::PlacementPolicy;
use smartapps_sim::{Inst, Machine, MachineConfig, Phase, RedOp, TraceSource, VecTrace};

fn boxed(v: Vec<Inst>) -> Box<dyn TraceSource> {
    Box::new(VecTrace::new(v))
}

/// A displacement storm from many processors into one home saturates that
/// home's combine unit: doubling the offered write-back load should
/// increase total time superlinearly compared to a spread-out load.
#[test]
fn combine_unit_saturation_at_single_home() {
    // All reduction lines home at node 0 (node 0 touches the pages first),
    // then nodes 1..4 displace reduction lines continuously by touching
    // far more lines than L2 holds.
    let run = |lines_per_proc: u64| -> u64 {
        let nodes = 4;
        let cfg = MachineConfig::table1(nodes);
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        // Node 0 claims all pages (plain touches), then idles at barriers.
        let mut v0 = vec![Inst::ConfigPclr { op: RedOp::AddF64 }];
        for l in 0..(3 * lines_per_proc) {
            v0.push(Inst::Load {
                addr: regions::shared_elem(l * 8),
            });
        }
        v0.push(Inst::Barrier);
        v0.push(Inst::Barrier);
        traces.push(boxed(v0));
        for p in 1..nodes {
            let mut v = vec![Inst::ConfigPclr { op: RedOp::AddF64 }, Inst::Barrier];
            v.push(Inst::SetPhase(Phase::Loop));
            for l in 0..lines_per_proc {
                let e = (p as u64 - 1) * lines_per_proc * 8 + l * 8;
                v.push(Inst::RedUpdate {
                    addr: to_shadow(regions::shared_elem(e)),
                    val: 0,
                });
            }
            v.push(Inst::Flush);
            v.push(Inst::Barrier);
            traces.push(boxed(v));
        }
        let mut m = Machine::new(cfg, traces);
        m.run().total_cycles
    };
    let small = run(512);
    let large = run(2048);
    // 4x the combine load on one home: the flush wait is combine-bound, so
    // time grows at least ~2.5x (it would grow ~1x if combining were free).
    assert!(
        large as f64 > small as f64 * 2.0,
        "combine saturation not visible: {small} -> {large}"
    );
}

/// The same total reduction traffic combined at 4 homes instead of 1
/// finishes faster: background combining parallelizes across homes.
#[test]
fn combining_parallelizes_across_homes() {
    let nodes = 4;
    let lines = 1024u64;
    let run = |spread: bool| -> u64 {
        let cfg = MachineConfig::table1(nodes);
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        // Claimer: either node 0 claims everything, or each node claims its
        // own quarter (spread).
        for p in 0..nodes {
            let mut v = vec![Inst::ConfigPclr { op: RedOp::AddF64 }];
            for l in 0..lines {
                let owner = if spread {
                    (l % nodes as u64) as usize
                } else {
                    0
                };
                if owner == p {
                    v.push(Inst::Load {
                        addr: regions::shared_elem(l * 512),
                    });
                }
            }
            v.push(Inst::Barrier);
            // Everyone then updates every line (maximal write-back traffic).
            v.push(Inst::SetPhase(Phase::Loop));
            for l in 0..lines {
                v.push(Inst::RedUpdate {
                    addr: to_shadow(regions::shared_elem(l * 512)),
                    val: 0,
                });
            }
            v.push(Inst::Flush);
            v.push(Inst::Barrier);
            traces.push(boxed(v));
        }
        let mut m = Machine::new(cfg, traces);
        m.run().total_cycles
    };
    let one_home = run(false);
    let four_homes = run(true);
    assert!(
        four_homes < one_home,
        "spreading homes must help: 1 home {one_home} vs 4 homes {four_homes}"
    );
}

/// Round-robin placement turns each processor's private streaming misses
/// into 3/4-remote misses (104 -> 297 cycles): the mechanism behind the
/// ablation harness's placement numbers.
#[test]
fn first_touch_beats_round_robin_for_streaming_loads() {
    let nodes = 4;
    let lines = 2048u64;
    let mk = || -> Vec<Box<dyn TraceSource>> {
        (0..nodes)
            .map(|p| {
                let mut v = Vec::new();
                v.push(Inst::SetPhase(Phase::Loop));
                for l in 0..lines {
                    // Disjoint per-proc regions, streaming.
                    let e = (p as u64 * lines + l) * 8;
                    v.push(Inst::Load {
                        addr: regions::shared_elem(e),
                    });
                }
                v.push(Inst::Barrier);
                boxed(v)
            })
            .collect()
    };
    let mut ft = Machine::with_placement(
        MachineConfig::table1(nodes),
        mk(),
        PlacementPolicy::FirstTouch,
    );
    let t_ft = ft.run().total_cycles;
    let mut rr = Machine::with_placement(
        MachineConfig::table1(nodes),
        mk(),
        PlacementPolicy::RoundRobin,
    );
    let t_rr = rr.run().total_cycles;
    assert!(
        t_rr as f64 > t_ft as f64 * 1.5,
        "3/4 of misses become 2-hop under round-robin: ft {t_ft} vs rr {t_rr}"
    );
}

/// Many processors flushing simultaneously serialize at network ports:
/// flushes of remote-homed lines take longer than local-homed ones.
#[test]
fn flush_pays_for_remote_homes() {
    let nodes = 2;
    let lines = 2048u64;
    let run = |remote: bool| -> u64 {
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        // Node 1 optionally claims all pages first.
        let mut v1 = vec![Inst::ConfigPclr { op: RedOp::AddF64 }];
        if remote {
            for l in 0..lines {
                v1.push(Inst::Load {
                    addr: regions::shared_elem(l * 8),
                });
            }
        }
        v1.push(Inst::Barrier);
        v1.push(Inst::Barrier);
        traces.insert(0, boxed(v1));
        // Node 0 runs the PCLR loop.
        let mut v0 = vec![Inst::ConfigPclr { op: RedOp::AddF64 }, Inst::Barrier];
        v0.push(Inst::SetPhase(Phase::Loop));
        for l in 0..lines {
            v0.push(Inst::RedUpdate {
                addr: to_shadow(regions::shared_elem(l * 8)),
                val: 0,
            });
        }
        v0.push(Inst::SetPhase(Phase::Merge));
        v0.push(Inst::Flush);
        v0.push(Inst::Barrier);
        traces.insert(0, boxed(v0));
        let mut m = Machine::new(MachineConfig::table1(nodes), traces);
        let stats = m.run();
        stats.proc_phases[0].time_in(Phase::Merge)
    };
    let local = run(false);
    let remote = run(true);
    assert!(
        remote > local,
        "remote-homed flush must cost network time: local {local} vs remote {remote}"
    );
}

/// Reduction fills contend at the local directory controller: a burst of
/// misses from one processor is paced by controller occupancy, and the
/// Flex controller paces it harder.
#[test]
fn reduction_fill_burst_paced_by_controller() {
    let lines = 1024u64;
    let run = |cfg: MachineConfig| -> u64 {
        let mut v = vec![
            Inst::ConfigPclr { op: RedOp::AddF64 },
            Inst::SetPhase(Phase::Loop),
        ];
        for l in 0..lines {
            v.push(Inst::RedUpdate {
                addr: to_shadow(regions::shared_elem(l * 8)),
                val: 0,
            });
        }
        v.push(Inst::Flush);
        v.push(Inst::Barrier);
        let mut m = Machine::new(cfg, vec![boxed(v)]);
        m.run().total_cycles
    };
    let hw = run(MachineConfig::table1(1));
    let flex = run(MachineConfig::flex(1));
    // Each miss occupies the controller for 2x its occupancy; Flex is 4x
    // slower per handler, so the burst should take noticeably longer.
    assert!(
        flex as f64 > hw as f64 * 1.5,
        "flex fill pacing: hw {hw} vs flex {flex}"
    );
}
