//! End-to-end tests of the CC-NUMA machine: timing calibration against
//! Table 1, protocol behaviour, PCLR correctness and phase accounting.

use smartapps_sim::addr::{regions, to_shadow};
use smartapps_sim::config::MachineConfig;
use smartapps_sim::machine::Machine;
use smartapps_sim::redop::RedOp;
use smartapps_sim::trace::{Inst, Phase, TraceBuilder, TraceSource, VecTrace};

fn boxed(t: VecTrace) -> Box<dyn TraceSource> {
    Box::new(t)
}

/// One processor, one load, everything local: the measured latency must be
/// the contention-free local round trip of Table 1 (104 cycles).
#[test]
fn local_miss_costs_104_cycles() {
    let cfg = MachineConfig::table1(1);
    let a = regions::shared_elem(0);
    // Load then a dependent barrier-free end: the total run time is the
    // load latency since nothing else executes.  The window model lets the
    // processor finish the trace while the load is outstanding, so instead
    // we measure with two back-to-back dependent loads via window pressure:
    // simpler: a single load; proc time ends when trace done, but the fill
    // event still completes.  We measure via a second load to the same line
    // which must hit after the fill.
    let t = TraceBuilder::new().load(a).build();
    let mut m = Machine::new(cfg, vec![boxed(t)]);
    let stats = m.run();
    // The machine drains all events; the fill completes at >= 104.
    assert!(stats.total_cycles <= 2, "proc retires past the miss");
    assert_eq!(stats.counters.mem_accesses, 1);
    assert_eq!(stats.counters.local_misses, 1);
    assert_eq!(stats.counters.remote_misses, 0);
}

/// Measure the local round trip by stalling the window: fill the window
/// with a miss plus `window` instructions, so the processor must wait for
/// the fill before retiring the rest.
#[test]
fn window_stall_exposes_local_latency() {
    let cfg = MachineConfig::table1(1);
    let a = regions::shared_elem(0);
    let t = TraceBuilder::new()
        .load(a)
        .work(64, 0) // fills the 64-entry window behind the load
        .work(4, 0) // must wait for the fill
        .build();
    let mut m = Machine::new(cfg.clone(), vec![boxed(t)]);
    let stats = m.run();
    // Fill at ~104 (+ issue cycles); the trailing work takes ~1-17 cycles.
    assert!(
        stats.total_cycles >= cfg.local_round_trip(),
        "total {} < local rt {}",
        stats.total_cycles,
        cfg.local_round_trip()
    );
    assert!(
        stats.total_cycles < cfg.local_round_trip() + 40,
        "total {} too far above local rt",
        stats.total_cycles
    );
}

/// A remote miss (first touch by the remote node) takes the 297-cycle
/// 2-hop round trip.
#[test]
fn remote_miss_costs_2hop_round_trip() {
    let cfg = MachineConfig::table1(2);
    let a = regions::shared_elem(0);
    // Node 1 touches the page first so its home is node 1; then node 0
    // misses remotely.  Sequence the touches with a barrier.
    let t0 = TraceBuilder::new()
        .barrier()
        .load(a)
        .work(64, 0)
        .work(4, 0)
        .build();
    let t1 = TraceBuilder::new().load(a).barrier().build();
    let mut m = Machine::new(cfg.clone(), vec![boxed(t0), boxed(t1)]);
    let stats = m.run();
    assert_eq!(stats.counters.remote_misses, 1);
    assert_eq!(stats.counters.local_misses, 1);
    // Node 0's time: barrier release (~node1 load issue + its own arrival)
    // then 297 cycles of remote fill before the trailing work retires.
    let p0 = stats.proc_cycles[0];
    assert!(p0 >= cfg.remote_round_trip(), "p0 {} < 297", p0);
}

/// Values written by stores become visible in memory after the run.
#[test]
fn store_values_reach_memory() {
    let mut cfg = MachineConfig::table1(1);
    cfg.track_values = true;
    let a = regions::shared_elem(7);
    let t = TraceBuilder::new().store(a, 0xabcdu64).build();
    let mut m = Machine::new(cfg, vec![boxed(t)]);
    m.run();
    assert_eq!(m.peek_memory(a), 0xabcd);
}

/// Two processors alternately write the same line: the directory must
/// serialize ownership and the final value must be one of the two stores
/// (the last writer's, given barrier ordering).
#[test]
fn ownership_migrates_between_writers() {
    let mut cfg = MachineConfig::table1(2);
    cfg.track_values = true;
    let a = regions::shared_elem(0);
    let t0 = TraceBuilder::new().store(a, 1).barrier().build();
    let t1 = TraceBuilder::new().barrier().store(a, 2).build();
    let mut m = Machine::new(cfg, vec![boxed(t0), boxed(t1)]);
    let stats = m.run();
    assert_eq!(m.peek_memory(a), 2, "second writer wins");
    assert!(stats.counters.mem_accesses >= 2);
}

/// The foundational PCLR test: concurrent reduction updates from all
/// processors combine exactly (integer operands — no FP rounding concerns).
#[test]
fn pclr_combines_concurrent_updates_exactly() {
    for nodes in [1usize, 2, 4] {
        let mut cfg = MachineConfig::table1(nodes);
        cfg.track_values = true;
        let a = regions::shared_elem(3);
        let shadow = to_shadow(a);
        let traces: Vec<Box<dyn TraceSource>> = (0..nodes)
            .map(|p| {
                let mut b = TraceBuilder::new()
                    .config_pclr(RedOp::AddI64)
                    .phase(Phase::Loop);
                for k in 0..10u64 {
                    b = b.red_update(shadow, p as u64 * 100 + k);
                }
                boxed(b.phase(Phase::Merge).flush().barrier().build())
            })
            .collect();
        let mut m = Machine::new(cfg, traces);
        m.poke_memory(a, 0);
        let stats = m.run();
        let expect: u64 = (0..nodes as u64)
            .map(|p| (0..10u64).map(|k| p * 100 + k).sum::<u64>())
            .sum();
        assert_eq!(m.peek_memory(a), expect, "nodes={nodes}");
        assert_eq!(
            stats.counters.red_fills as usize, nodes,
            "one fill per proc"
        );
        assert_eq!(
            stats.counters.red_flushed as usize, nodes,
            "one flush WB per proc"
        );
    }
}

/// PCLR with f64 operands across distinct elements: each element gets
/// updates from every processor.
#[test]
fn pclr_f64_many_elements() {
    let nodes = 4;
    let elems = 64u64; // 8 lines
    let mut cfg = MachineConfig::table1(nodes);
    cfg.track_values = true;
    let traces: Vec<Box<dyn TraceSource>> = (0..nodes)
        .map(|_| {
            let mut b = TraceBuilder::new()
                .config_pclr(RedOp::AddF64)
                .phase(Phase::Loop);
            for e in 0..elems {
                b = b.red_update(to_shadow(regions::shared_elem(e)), 1.5f64.to_bits());
            }
            boxed(b.phase(Phase::Merge).flush().barrier().build())
        })
        .collect();
    let mut m = Machine::new(cfg, traces);
    for e in 0..elems {
        m.poke_memory(regions::shared_elem(e), 0f64.to_bits());
    }
    m.run();
    for e in 0..elems {
        let v = f64::from_bits(m.peek_memory(regions::shared_elem(e)));
        assert_eq!(v, 1.5 * nodes as f64, "element {e}");
    }
}

/// Reduction fills never consult the home: they are cheap local
/// transactions.  With a remote home for the array, PCLR loop misses must
/// still be serviced at the reduction-fill latency, not 297 cycles.
#[test]
fn reduction_fills_are_local() {
    let cfg = MachineConfig::table1(2);
    let a = regions::shared_elem(0);
    let shadow = to_shadow(a);
    // Node 1 is made home by first touch (plain load), then node 0 runs a
    // PCLR loop over the line.
    let t0 = TraceBuilder::new()
        .barrier()
        .config_pclr(RedOp::AddF64)
        .phase(Phase::Loop)
        .red_update(shadow, 1.0f64.to_bits())
        .work(64, 0)
        .work(4, 0)
        .phase(Phase::Merge)
        .flush()
        .barrier()
        .build();
    let t1 = TraceBuilder::new()
        .load(a)
        .barrier()
        .config_pclr(RedOp::AddF64)
        .barrier()
        .build();
    let mut m = Machine::new(cfg.clone(), vec![boxed(t0), boxed(t1)]);
    let stats = m.run();
    assert_eq!(stats.counters.red_fills, 1);
    // The displaced/flushed line travels to node 1 (its home).
    assert_eq!(stats.counters.red_flushed, 1);
    // Local fill latency (54 contention-free) is far below a remote miss.
    assert!(cfg.reduction_fill_latency() < 100);
}

/// Phase accounting: Init/Loop/Merge durations are attributed per phase
/// mark and the breakdown sums to total time (single processor).
#[test]
fn phase_accounting_partitions_time() {
    let cfg = MachineConfig::table1(1);
    let a = regions::private_elem(0, 0);
    let t = TraceBuilder::new()
        .phase(Phase::Init)
        .store(a, 1)
        .work(400, 0)
        .phase(Phase::Loop)
        .work(2000, 0)
        .phase(Phase::Merge)
        .work(100, 100)
        .build();
    let mut m = Machine::new(cfg, vec![boxed(t)]);
    let stats = m.run();
    let bd = stats.breakdown();
    assert!(bd.init >= 100, "init contains the 400-op bundle: {bd:?}");
    assert!(
        bd.looptime >= 500,
        "loop contains the 2000-op bundle: {bd:?}"
    );
    assert!(bd.merge >= 50, "merge contains the mixed bundle: {bd:?}");
    // Startup phase may hold a couple of cycles; phases cover the rest.
    assert!(bd.total() <= stats.total_cycles);
    assert!(
        bd.total() + 10 >= stats.total_cycles,
        "{bd:?} vs {}",
        stats.total_cycles
    );
}

/// Work bundles respect issue width and FU throughput.
#[test]
fn work_bundle_timing() {
    let cfg = MachineConfig::table1(1);
    // 4000 int ops at 4-wide, 4 int units -> ~1000 cycles.
    let t = TraceBuilder::new().work(4000, 0).build();
    let mut m = Machine::new(cfg, vec![boxed(t)]);
    let s = m.run();
    assert_eq!(s.total_cycles, 1000);

    // 4000 fp ops limited by 2 FP units -> 2000 cycles.
    let cfg = MachineConfig::table1(1);
    let t = TraceBuilder::new().work(0, 4000).build();
    let mut m = Machine::new(cfg, vec![boxed(t)]);
    let s = m.run();
    assert_eq!(s.total_cycles, 2000);
}

/// Branch mispredictions add the Table 1 penalty.
#[test]
fn branch_penalty_charged() {
    let cfg = MachineConfig::table1(1);
    let t = VecTrace::new(vec![Inst::Work {
        ints: 0,
        fps: 0,
        branches: 10,
    }]);
    let mut m = Machine::new(cfg, vec![boxed(t)]);
    let s = m.run();
    // ceil(10/4) = 3 issue cycles + 10*4 penalty cycles.
    assert_eq!(s.total_cycles, 3 + 40);
}

/// Barriers synchronize: a fast processor waits for a slow one.
#[test]
fn barrier_waits_for_slowest() {
    let cfg = MachineConfig::table1(2);
    let fast = TraceBuilder::new().barrier().work(4, 0).build();
    let slow = TraceBuilder::new().work(40_000, 0).barrier().build();
    let mut m = Machine::new(cfg, vec![boxed(fast), boxed(slow)]);
    let s = m.run();
    // Slow proc takes 10_000 cycles to arrive; both finish after that.
    assert!(s.proc_cycles[0] >= 10_000);
    assert!(s.proc_cycles[1] >= 10_000);
    assert_eq!(s.counters.barriers, 1);
}

/// A processor that finishes early does not deadlock later barriers.
#[test]
fn done_processor_exits_barrier_protocol() {
    let cfg = MachineConfig::table1(2);
    let quits = TraceBuilder::new().work(4, 0).build(); // no barrier at all
    let waits = TraceBuilder::new()
        .work(400, 0)
        .barrier()
        .work(4, 0)
        .build();
    let mut m = Machine::new(cfg, vec![boxed(quits), boxed(waits)]);
    let s = m.run();
    assert_eq!(s.counters.barriers, 1);
}

/// Streaming through a large array produces one miss per line, and
/// repeated passes hit in L2 when the array fits.
#[test]
fn cache_capacity_and_reuse() {
    let cfg = MachineConfig::table1(1);
    // 2048 elements = 16 KiB: fits in L1 (32 KiB).
    let mut b = TraceBuilder::new();
    for e in 0..2048u64 {
        b = b.load(regions::shared_elem(e));
    }
    for e in 0..2048u64 {
        b = b.load(regions::shared_elem(e));
    }
    let mut m = Machine::new(cfg, vec![boxed(b.build())]);
    let s = m.run();
    // 2048 elements / 8 per line = 256 lines -> 256 misses, rest hits.
    assert_eq!(s.counters.mem_accesses, 256);
    assert_eq!(s.counters.l1_hits, 2 * 2048 - 256);
}

/// Reduction lines displaced during the loop are counted as displacements,
/// those drained at the flush as flushes (Table 2's last two columns).
#[test]
fn displacement_vs_flush_accounting() {
    let mut cfg = MachineConfig::table1(1);
    cfg.track_values = true;
    // Touch far more reduction lines than L2 can hold: L2 = 8192 lines.
    // Use 3x that many distinct lines so most displace during the loop.
    let lines = 3 * cfg.l2.lines() as u64;
    let mut b = TraceBuilder::new()
        .config_pclr(RedOp::AddI64)
        .phase(Phase::Loop);
    for l in 0..lines {
        b = b.red_update(to_shadow(regions::shared_elem(l * 8)), 1);
    }
    let t = b.phase(Phase::Merge).flush().barrier().build();
    let mut m = Machine::new(cfg.clone(), vec![boxed(t)]);
    let s = m.run();
    assert_eq!(s.counters.red_fills, lines);
    assert_eq!(s.counters.red_displaced + s.counters.red_flushed, lines);
    assert!(s.counters.red_displaced > 0, "loop must displace");
    assert!(s.counters.red_flushed > 0, "flush must drain the rest");
    assert!(
        s.counters.red_flushed <= (cfg.l1.lines() + cfg.l2.lines()) as u64,
        "flush bounded by cache capacity"
    );
    // Every update of 1 must land in memory exactly once.
    for l in 0..lines {
        assert_eq!(m.peek_memory(regions::shared_elem(l * 8)), 1, "line {l}");
    }
}

/// Plain data lingering dirty in a cache is recalled before the first
/// reduction write-back combines (Section 5.1.3).
#[test]
fn red_writeback_recalls_lingering_dirty_copy() {
    let mut cfg = MachineConfig::table1(2);
    cfg.track_values = true;
    let a = regions::shared_elem(0);
    let shadow = to_shadow(a);
    // Node 1 dirties the line with a plain store (value 5), keeps it
    // cached.  Node 0 then runs a PCLR loop adding 3.  Final value must be
    // 5 + 3 = 8: the recall writes 5 back before combining.
    let t0 = TraceBuilder::new()
        .barrier()
        .config_pclr(RedOp::AddI64)
        .phase(Phase::Loop)
        .red_update(shadow, 3)
        .phase(Phase::Merge)
        .flush()
        .barrier()
        .build();
    let t1 = TraceBuilder::new()
        .store(a, 5)
        .barrier()
        .config_pclr(RedOp::AddI64)
        .barrier()
        .build();
    let mut m = Machine::new(cfg, vec![boxed(t0), boxed(t1)]);
    m.poke_memory(a, 0);
    let s = m.run();
    assert_eq!(m.peek_memory(a), 8);
    assert!(s.counters.recalls >= 1, "dirty copy must be recalled");
}

/// The Flex (programmable) controller produces strictly slower reduction
/// handling than the hardwired one, with identical results.
#[test]
fn flex_slower_than_hw_same_result() {
    let run = |cfg: MachineConfig| {
        let nodes = cfg.nodes;
        let mut cfg = cfg;
        cfg.track_values = true;
        let traces: Vec<Box<dyn TraceSource>> = (0..nodes)
            .map(|_| {
                let mut b = TraceBuilder::new()
                    .config_pclr(RedOp::AddI64)
                    .phase(Phase::Loop);
                for e in 0..512u64 {
                    b = b.red_update(to_shadow(regions::shared_elem(e * 8)), 1);
                }
                boxed(b.phase(Phase::Merge).flush().barrier().build())
            })
            .collect();
        let mut m = Machine::new(cfg, traces);
        let s = m.run();
        let v = m.peek_memory(regions::shared_elem(0));
        (s.total_cycles, v)
    };
    let (hw_t, hw_v) = run(MachineConfig::table1(4));
    let (fx_t, fx_v) = run(MachineConfig::flex(4));
    assert_eq!(hw_v, 4);
    assert_eq!(fx_v, 4);
    assert!(fx_t > hw_t, "flex {fx_t} should exceed hw {hw_t}");
}

/// Upgrades: a line loaded Shared by both nodes and then stored must
/// upgrade, invalidating the other sharer.  The loads are forced to
/// complete (window pressure) before the barrier so both sharers are
/// registered at the home when the store issues.
#[test]
fn upgrade_invalidates_other_sharers() {
    let mut cfg = MachineConfig::table1(2);
    cfg.track_values = true;
    let a = regions::shared_elem(0);
    let t0 = TraceBuilder::new()
        .load(a)
        .work(64, 0)
        .work(4, 0) // retires only after the fill: line resident Shared
        .barrier()
        .store(a, 9)
        .barrier()
        .build();
    let t1 = TraceBuilder::new()
        .load(a)
        .work(64, 0)
        .work(4, 0)
        .barrier()
        .barrier()
        .build();
    let mut m = Machine::new(cfg, vec![boxed(t0), boxed(t1)]);
    let s = m.run();
    assert!(s.counters.invalidations >= 1, "counters: {:?}", s.counters);
    assert_eq!(m.peek_memory(a), 9);
}

/// Deterministic: identical runs give identical cycle counts.
#[test]
fn simulation_is_deterministic() {
    let mk = || {
        let nodes = 4;
        let traces: Vec<Box<dyn TraceSource>> = (0..nodes)
            .map(|p| {
                let mut b = TraceBuilder::new().phase(Phase::Loop);
                for i in 0..200u64 {
                    b = b
                        .load(regions::shared_elem((p as u64 * 977 + i * 61) % 4096))
                        .work(7, 2);
                }
                boxed(b.barrier().build())
            })
            .collect();
        let mut m = Machine::new(MachineConfig::table1(nodes), traces);
        m.run().total_cycles
    };
    assert_eq!(mk(), mk());
}

/// PCLR with a Max reduction: the neutral fill is -inf and the combine
/// takes maxima — exercising the non-additive operator path end to end.
#[test]
fn pclr_max_reduction_end_to_end() {
    let nodes = 4;
    let mut cfg = MachineConfig::table1(nodes);
    cfg.track_values = true;
    let a = regions::shared_elem(5);
    let traces: Vec<Box<dyn TraceSource>> = (0..nodes)
        .map(|p| {
            let mut b = TraceBuilder::new()
                .config_pclr(RedOp::MaxF64)
                .phase(Phase::Loop);
            for k in 0..8u64 {
                let v = (p as f64 * 10.0) + k as f64;
                b = b.red_update(to_shadow(a), v.to_bits());
            }
            boxed(b.phase(Phase::Merge).flush().barrier().build())
        })
        .collect();
    let mut m = Machine::new(cfg, traces);
    m.poke_memory(a, (-1.0f64).to_bits());
    m.run();
    // Max over procs of (p*10 + 7): p=3 -> 37.
    assert_eq!(f64::from_bits(m.peek_memory(a)), 37.0);
}

/// A Min reduction where the memory's prior value is already the minimum:
/// neutral fills (+inf) must not disturb it.
#[test]
fn pclr_min_keeps_prior_minimum() {
    let mut cfg = MachineConfig::table1(2);
    cfg.track_values = true;
    let a = regions::shared_elem(0);
    let traces: Vec<Box<dyn TraceSource>> = (0..2)
        .map(|p| {
            boxed(
                TraceBuilder::new()
                    .config_pclr(RedOp::MinF64)
                    .phase(Phase::Loop)
                    .red_update(to_shadow(a), (100.0 + p as f64).to_bits())
                    .phase(Phase::Merge)
                    .flush()
                    .barrier()
                    .build(),
            )
        })
        .collect();
    let mut m = Machine::new(cfg, traces);
    m.poke_memory(a, (-5.0f64).to_bits());
    m.run();
    assert_eq!(f64::from_bits(m.peek_memory(a)), -5.0);
}

/// Section 5.1.1 vs 5.1.5: reduction accesses identified by special
/// instructions on *real* addresses behave identically (cycles and values)
/// to shadow-addressed ones — the two differentiation mechanisms the paper
/// proposes are equivalent.
#[test]
fn special_instruction_and_shadow_modes_equivalent() {
    let run = |use_shadow: bool| -> (u64, u64) {
        let nodes = 2;
        let mut cfg = MachineConfig::table1(nodes);
        cfg.track_values = true;
        let traces: Vec<Box<dyn TraceSource>> = (0..nodes)
            .map(|p| {
                let mut b = TraceBuilder::new()
                    .config_pclr(RedOp::AddI64)
                    .phase(Phase::Loop);
                for k in 0..200u64 {
                    let e = (p as u64 * 97 + k * 13) % 512;
                    let a = regions::shared_elem(e);
                    let addr = if use_shadow { to_shadow(a) } else { a };
                    b = b.red_update(addr, 1);
                }
                boxed(b.phase(Phase::Merge).flush().barrier().build())
            })
            .collect();
        let mut m = Machine::new(cfg, traces);
        let stats = m.run();
        let total: u64 = (0..512u64)
            .map(|e| m.peek_memory(regions::shared_elem(e)))
            .sum();
        (stats.total_cycles, total)
    };
    let (shadow_cycles, shadow_sum) = run(true);
    let (special_cycles, special_sum) = run(false);
    assert_eq!(shadow_sum, 400);
    assert_eq!(special_sum, 400);
    assert_eq!(shadow_cycles, special_cycles, "identical timing");
}
