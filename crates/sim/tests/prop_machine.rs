//! Property tests for the simulator: PCLR combining is exact for integer
//! operands under arbitrary interleavings, coherence keeps single-writer
//! semantics, and the machine never deadlocks on well-formed traces.

use proptest::prelude::*;
use smartapps_sim::addr::{regions, to_shadow};
use smartapps_sim::{Inst, Machine, MachineConfig, Phase, RedOp, TraceSource, VecTrace};

fn boxed(v: Vec<Inst>) -> Box<dyn TraceSource> {
    Box::new(VecTrace::new(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every processor issues an arbitrary bag of reduction updates to a
    /// small element set; after flush, memory holds exactly the global sum
    /// per element.
    #[test]
    fn pclr_sums_are_exact(
        per_proc in proptest::collection::vec(
            proptest::collection::vec((0u64..32, 1u64..100), 0..60),
            1..5,
        ),
        interleave_work in any::<bool>(),
    ) {
        let nodes = per_proc.len().next_power_of_two();
        let mut cfg = MachineConfig::table1(nodes);
        cfg.track_values = true;
        let mut expected = [0u64; 32];
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        for updates in &per_proc {
            let mut v = vec![
                Inst::ConfigPclr { op: RedOp::AddI64 },
                Inst::SetPhase(Phase::Loop),
            ];
            for &(e, val) in updates {
                expected[e as usize] += val;
                v.push(Inst::RedUpdate {
                    addr: to_shadow(regions::shared_elem(e)),
                    val,
                });
                if interleave_work {
                    v.push(Inst::Work { ints: 3, fps: 1, branches: 0 });
                }
            }
            v.push(Inst::SetPhase(Phase::Merge));
            v.push(Inst::Flush);
            v.push(Inst::Barrier);
            traces.push(boxed(v));
        }
        for _ in per_proc.len()..nodes {
            traces.push(boxed(vec![
                Inst::ConfigPclr { op: RedOp::AddI64 },
                Inst::Barrier,
            ]));
        }
        let mut m = Machine::new(cfg, traces);
        let stats = m.run();
        for (e, &want) in expected.iter().enumerate() {
            prop_assert_eq!(
                m.peek_memory(regions::shared_elem(e as u64)),
                want,
                "element {}",
                e
            );
        }
        // Conservation: fills equal flushes plus displacements is not
        // guaranteed (hits reuse lines), but every flush/displacement had
        // a fill.
        prop_assert!(
            stats.counters.red_fills
                >= stats.counters.red_flushed + stats.counters.red_displaced
        );
    }

    /// Plain coherent stores: the last writer in barrier order wins, for
    /// arbitrary write values and processor counts.
    #[test]
    fn single_writer_semantics(
        vals in proptest::collection::vec(1u64..1000, 2..5),
    ) {
        let nodes = vals.len().next_power_of_two();
        let mut cfg = MachineConfig::table1(nodes);
        cfg.track_values = true;
        let a = regions::shared_elem(0);
        // Proc k writes vals[k] in barrier-separated round k.
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        for k in 0..nodes {
            let mut v = Vec::new();
            for round in 0..vals.len() {
                if round == k {
                    if let Some(&val) = vals.get(k) {
                        v.push(Inst::Store { addr: a, val });
                        // Force completion before the barrier.
                        v.push(Inst::Work { ints: 64, fps: 0, branches: 0 });
                        v.push(Inst::Work { ints: 4, fps: 0, branches: 0 });
                        v.push(Inst::Load { addr: a });
                    }
                }
                v.push(Inst::Barrier);
            }
            traces.push(boxed(v));
        }
        let mut m = Machine::new(cfg, traces);
        m.run();
        prop_assert_eq!(m.peek_memory(a), *vals.last().unwrap());
    }

    /// Arbitrary well-formed traces (balanced barriers) always drain: no
    /// deadlocks, and cycle counts are positive and deterministic.
    #[test]
    fn no_deadlocks_and_deterministic(
        ops in proptest::collection::vec(
            proptest::collection::vec((0u8..4, 0u64..64), 0..40),
            2..5,
        ),
    ) {
        let nodes = ops.len().next_power_of_two();
        let build = || -> Vec<Box<dyn TraceSource>> {
            let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
            for p in 0..nodes {
                let mut v = vec![Inst::ConfigPclr { op: RedOp::AddF64 }];
                if let Some(list) = ops.get(p) {
                    for &(kind, e) in list {
                        let a = regions::shared_elem(e);
                        v.push(match kind {
                            0 => Inst::Load { addr: a },
                            1 => Inst::Store { addr: a, val: e },
                            2 => Inst::RedUpdate {
                                addr: to_shadow(a),
                                val: 1,
                            },
                            _ => Inst::Work { ints: 7, fps: 2, branches: 1 },
                        });
                    }
                }
                v.push(Inst::Flush);
                v.push(Inst::Barrier);
                traces.push(boxed(v));
            }
            traces
        };
        let mut m1 = Machine::new(MachineConfig::table1(nodes), build());
        let s1 = m1.run();
        let mut m2 = Machine::new(MachineConfig::table1(nodes), build());
        let s2 = m2.run();
        prop_assert!(s1.total_cycles > 0);
        prop_assert_eq!(s1.total_cycles, s2.total_cycles);
        prop_assert_eq!(s1.counters.instructions, s2.counters.instructions);
    }

    /// After a run, no reduction line remains resident anywhere (flush
    /// drains them all) — checked via the counters: fills minus reuse
    /// equals flushed plus displaced.
    #[test]
    fn flush_leaves_no_reduction_residue(
        elems in proptest::collection::vec(0u64..512, 1..100),
    ) {
        let mut cfg = MachineConfig::table1(2);
        cfg.track_values = true;
        let mk = |list: &[u64]| -> Box<dyn TraceSource> {
            let mut v = vec![
                Inst::ConfigPclr { op: RedOp::AddI64 },
                Inst::SetPhase(Phase::Loop),
            ];
            for &e in list {
                v.push(Inst::RedUpdate { addr: to_shadow(regions::shared_elem(e)), val: 1 });
            }
            v.push(Inst::Flush);
            v.push(Inst::Barrier);
            boxed(v)
        };
        let half = elems.len() / 2;
        let mut m = Machine::new(cfg, vec![mk(&elems[..half]), mk(&elems[half..])]);
        m.run();
        let total: u64 = (0..512u64)
            .map(|e| m.peek_memory(regions::shared_elem(e)))
            .sum();
        prop_assert_eq!(total as usize, elems.len());
    }
}
