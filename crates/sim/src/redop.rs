//! Reduction operators supported by the PCLR hardware (Section 5.1.4).
//!
//! The directory controller is configured, before a reduction loop runs,
//! with the data type and operation of the reduction; each node's combine
//! unit then applies that operation when merging displaced reduction lines
//! into memory.  The paper's applications only use double-precision
//! floating-point addition, but the hardware description also admits
//! integer operations and FP comparison (max/min), so we support those.
//!
//! Values travel through the simulated memory system as raw `u64` bit
//! patterns; the operator interprets them.

use serde::{Deserialize, Serialize};

/// A reduction operator with its identity (neutral) element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedOp {
    /// Double-precision floating-point addition (the common case).
    AddF64,
    /// 64-bit integer addition (wrapping, matching hardware adders).
    AddI64,
    /// Double-precision maximum.
    MaxF64,
    /// Double-precision minimum.
    MinF64,
    /// 64-bit integer bitwise OR (used by some flag reductions).
    OrI64,
}

impl RedOp {
    /// The neutral element of the operation, as a raw bit pattern.  Lines
    /// filled on demand by the directory controller contain this value in
    /// every element.
    #[inline]
    pub fn neutral(self) -> u64 {
        match self {
            RedOp::AddF64 => 0f64.to_bits(),
            RedOp::AddI64 => 0,
            RedOp::MaxF64 => f64::NEG_INFINITY.to_bits(),
            RedOp::MinF64 => f64::INFINITY.to_bits(),
            RedOp::OrI64 => 0,
        }
    }

    /// Combine two values (both raw bit patterns), returning the result as
    /// a raw bit pattern.  The operation is associative and commutative,
    /// which is what makes displacement-order combining legal.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            RedOp::AddF64 => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
            RedOp::AddI64 => (a as i64).wrapping_add(b as i64) as u64,
            RedOp::MaxF64 => f64::from_bits(a).max(f64::from_bits(b)).to_bits(),
            RedOp::MinF64 => f64::from_bits(a).min(f64::from_bits(b)).to_bits(),
            RedOp::OrI64 => a | b,
        }
    }

    /// True if the operator needs the floating-point unit of the combine
    /// engine (the paper argues an FP adder and comparator suffice).
    pub fn is_fp(self) -> bool {
        matches!(self, RedOp::AddF64 | RedOp::MaxF64 | RedOp::MinF64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_elements_are_identities() {
        let samples = [3.5f64.to_bits(), (-7.25f64).to_bits(), 0f64.to_bits()];
        for op in [RedOp::AddF64, RedOp::MaxF64, RedOp::MinF64] {
            for &v in &samples {
                assert_eq!(op.apply(op.neutral(), v), v, "{op:?}");
                assert_eq!(op.apply(v, op.neutral()), v, "{op:?}");
            }
        }
        for op in [RedOp::AddI64, RedOp::OrI64] {
            for v in [0u64, 1, 42, u64::MAX / 2] {
                assert_eq!(op.apply(op.neutral(), v), v, "{op:?}");
            }
        }
    }

    #[test]
    fn integer_add_is_exact_and_commutative() {
        let op = RedOp::AddI64;
        assert_eq!(op.apply(3, 4), 7);
        assert_eq!(op.apply(4, 3), 7);
        // Wrapping, like a hardware adder.
        assert_eq!(op.apply(u64::MAX, 1), 0);
    }

    #[test]
    fn fp_add_combines() {
        let op = RedOp::AddF64;
        let r = f64::from_bits(op.apply(1.5f64.to_bits(), 2.25f64.to_bits()));
        assert_eq!(r, 3.75);
    }

    #[test]
    fn max_min_or() {
        assert_eq!(
            f64::from_bits(RedOp::MaxF64.apply(1.0f64.to_bits(), 2.0f64.to_bits())),
            2.0
        );
        assert_eq!(
            f64::from_bits(RedOp::MinF64.apply(1.0f64.to_bits(), 2.0f64.to_bits())),
            1.0
        );
        assert_eq!(RedOp::OrI64.apply(0b0101, 0b0011), 0b0111);
    }

    #[test]
    fn fp_classification() {
        assert!(RedOp::AddF64.is_fp());
        assert!(RedOp::MaxF64.is_fp());
        assert!(!RedOp::AddI64.is_fp());
        assert!(!RedOp::OrI64.is_fp());
    }
}
