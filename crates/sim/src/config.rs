//! Machine configuration mirroring Table 1 of the paper.
//!
//! The paper models a CC-NUMA multiprocessor with up to 16 nodes.  Each node
//! holds a 4-issue dynamic superscalar processor, a two-level write-back
//! cache hierarchy, a slice of the shared memory and its directory
//! controller.  The directory controller is enhanced with a double-precision
//! floating-point add unit clocked at 1/3 of the processor frequency,
//! pipelined so it can start one addition every 3 processor cycles with a
//! latency of 6 processor cycles.
//!
//! The contention-free round-trip latencies of Table 1 (L1 = 2, L2 = 10,
//! local memory = 104, 2-hop remote memory = 297 processor cycles) are
//! recovered exactly from the constituent latencies chosen here; see
//! [`MachineConfig::local_round_trip`] and
//! [`MachineConfig::remote_round_trip`], which are checked by unit tests and
//! by the `table1_config` harness.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Access latency in processor cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size / (self.assoc * self.line)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.size / self.line
    }
}

/// Which directory-controller implementation services PCLR transactions.
///
/// The paper evaluates a *hardwired* controller (`Hw`) and a *programmable*
/// controller in the style of the FLASH MAGIC micro-controller (`Flex`).
/// The programmable controller provides the PCLR functionality in firmware,
/// so every reduction transaction occupies the controller for longer and the
/// per-element combining is slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Hardwired PCLR support in the directory controller.
    Hardwired,
    /// Programmable (MAGIC-like) controller: reduction handlers run as
    /// firmware, multiplying occupancy.
    Programmable,
}

/// Full machine configuration (Table 1 defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of nodes (processor + caches + memory/directory slice).
    pub nodes: usize,
    /// Dynamic superscalar issue width (instructions per cycle).
    pub issue_width: u32,
    /// Integer functional units.
    pub int_units: u32,
    /// Floating-point functional units.
    pub fp_units: u32,
    /// Load/store functional units.
    pub ldst_units: u32,
    /// Instruction window size: how many instructions may be in flight past
    /// the oldest incomplete memory operation before the front end stalls.
    pub window: u32,
    /// Maximum pending (outstanding-miss) loads.
    pub max_pending_loads: usize,
    /// Maximum pending stores in the store buffer.
    pub max_pending_stores: usize,
    /// Branch misprediction penalty in cycles.
    pub branch_penalty: u64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 unified cache.
    pub l2: CacheConfig,
    /// Node-internal bus latency (cache <-> local directory controller).
    pub bus_latency: u64,
    /// Directory controller occupancy per protocol action, in processor
    /// cycles (the controller is clocked at 1/3 of the processor).
    pub dir_occupancy: u64,
    /// DRAM access latency at the home node.
    pub mem_latency: u64,
    /// Network latency for one hop between two distinct nodes.
    pub net_hop_latency: u64,
    /// Cycles a network port is occupied per message (contention only; does
    /// not add latency to an uncontended message).
    pub port_occupancy: u64,
    /// Page size for first-touch placement.
    pub page_size: usize,
    /// Pipelined combine-unit initiation interval, processor cycles per
    /// element (Table 1: FP adder at 1/3 clock, fully pipelined -> 3).
    pub combine_init_interval: u64,
    /// Combine-unit latency for one element (2 controller cycles = 6
    /// processor cycles).
    pub combine_latency: u64,
    /// Which controller implementation services reduction transactions.
    pub controller: ControllerKind,
    /// Occupancy multiplier applied to reduction handlers when
    /// `controller == Programmable` (firmware dispatch cost).
    pub flex_occupancy_factor: u64,
    /// Combine initiation interval for the programmable controller
    /// (software combining on the embedded core).
    pub flex_combine_init_interval: u64,
    /// Track data values through the memory system (used by correctness
    /// tests; adds overhead, off for large timing runs).
    pub track_values: bool,
    /// Maximum cycles a processor may run ahead before yielding to the
    /// event loop (bounds causality slip between nodes).
    pub quantum: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::table1(16)
    }
}

impl MachineConfig {
    /// The configuration of Table 1 with the given node count.
    pub fn table1(nodes: usize) -> Self {
        MachineConfig {
            nodes,
            issue_width: 4,
            int_units: 4,
            fp_units: 2,
            ldst_units: 2,
            window: 64,
            max_pending_loads: 8,
            max_pending_stores: 16,
            branch_penalty: 4,
            l1: CacheConfig {
                size: 32 * 1024,
                assoc: 2,
                line: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size: 512 * 1024,
                assoc: 4,
                line: 64,
                latency: 10,
            },
            bus_latency: 6,
            dir_occupancy: 9,
            mem_latency: 50,
            net_hop_latency: 92,
            port_occupancy: 4,
            page_size: 4096,
            combine_init_interval: 3,
            combine_latency: 6,
            controller: ControllerKind::Hardwired,
            flex_occupancy_factor: 4,
            flex_combine_init_interval: 9,
            track_values: false,
            quantum: 250,
        }
    }

    /// Same machine with the programmable (Flex) controller.
    pub fn flex(nodes: usize) -> Self {
        MachineConfig {
            controller: ControllerKind::Programmable,
            ..Self::table1(nodes)
        }
    }

    /// Elements of the configured data type per cache line (f64).
    pub fn elems_per_line(&self) -> usize {
        self.l1.line / 8
    }

    /// Contention-free round trip for an L1 miss satisfied by local memory.
    ///
    /// Path: L1 lookup + L2 lookup + bus to the local directory + request
    /// occupancy + memory access + response occupancy + bus + L2 fill + L1
    /// fill.  With Table 1 constants this is exactly 104 cycles.
    pub fn local_round_trip(&self) -> u64 {
        self.l1.latency
            + self.l2.latency
            + self.bus_latency
            + self.dir_occupancy
            + self.mem_latency
            + self.dir_occupancy
            + self.bus_latency
            + self.l2.latency
            + self.l1.latency
    }

    /// Contention-free round trip for an L1 miss satisfied by a remote home
    /// (2-hop: requester -> home -> requester, line clean at home).
    ///
    /// The outbound request is snooped by the local directory controller
    /// (PCLR requires the local controller to observe all requests, Section
    /// 5.1); the response returns directly to the requester's bus.  With
    /// Table 1 constants this is exactly 297 cycles.
    pub fn remote_round_trip(&self) -> u64 {
        self.l1.latency
            + self.l2.latency
            + self.bus_latency
            + self.dir_occupancy          // local controller snoops outbound
            + self.net_hop_latency
            + self.dir_occupancy          // home accepts request
            + self.mem_latency
            + self.dir_occupancy          // home packages response
            + self.net_hop_latency
            + self.bus_latency
            + self.l2.latency
            + self.l1.latency
    }

    /// Contention-free latency of a PCLR reduction fill: the request never
    /// leaves the node; the local directory controller supplies a line of
    /// neutral elements without touching memory.
    pub fn reduction_fill_latency(&self) -> u64 {
        self.local_round_trip() - self.mem_latency
    }

    /// Occupancy of a reduction protocol action on the configured
    /// controller.
    pub fn red_handler_occupancy(&self) -> u64 {
        match self.controller {
            ControllerKind::Hardwired => self.dir_occupancy,
            ControllerKind::Programmable => self.dir_occupancy * self.flex_occupancy_factor,
        }
    }

    /// Per-element combine initiation interval on the configured controller.
    pub fn combine_interval(&self) -> u64 {
        match self.controller {
            ControllerKind::Hardwired => self.combine_init_interval,
            ControllerKind::Programmable => self.flex_combine_init_interval,
        }
    }

    /// Occupancy of combining one full cache line at the home: memory read,
    /// pipelined per-element combining, drain latency (memory write is
    /// overlapped with the pipeline drain).
    pub fn combine_line_occupancy(&self) -> u64 {
        self.mem_latency
            + self.combine_interval() * self.elems_per_line() as u64
            + self.combine_latency
    }

    /// Validate internal consistency; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be >= 1".into());
        }
        if !self.nodes.is_power_of_two() {
            return Err(format!("nodes must be a power of two, got {}", self.nodes));
        }
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2)] {
            if c.line == 0 || !c.line.is_power_of_two() {
                return Err(format!("{name} line size must be a power of two"));
            }
            if c.size % (c.line * c.assoc) != 0 {
                return Err(format!("{name} size must be divisible by assoc*line"));
            }
            if !c.sets().is_power_of_two() {
                return Err(format!("{name} set count must be a power of two"));
            }
        }
        if self.l1.line != self.l2.line {
            return Err("L1 and L2 must share a line size".into());
        }
        if !self.page_size.is_multiple_of(self.l1.line) {
            return Err("page size must be a multiple of the line size".into());
        }
        if self.issue_width == 0 {
            return Err("issue width must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults_match_paper() {
        let c = MachineConfig::table1(16);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.l1.size, 32 * 1024);
        assert_eq!(c.l1.assoc, 2);
        assert_eq!(c.l1.line, 64);
        assert_eq!(c.l1.latency, 2);
        assert_eq!(c.l2.size, 512 * 1024);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.l2.latency, 10);
        assert_eq!(c.window, 64);
        assert_eq!(c.max_pending_loads, 8);
        assert_eq!(c.max_pending_stores, 16);
        assert_eq!(c.branch_penalty, 4);
    }

    #[test]
    fn round_trips_match_table1() {
        let c = MachineConfig::table1(16);
        assert_eq!(c.local_round_trip(), 104);
        assert_eq!(c.remote_round_trip(), 297);
    }

    #[test]
    fn reduction_fill_is_local_and_cheap() {
        let c = MachineConfig::table1(16);
        assert_eq!(c.reduction_fill_latency(), 54);
        assert!(c.reduction_fill_latency() < c.local_round_trip());
    }

    #[test]
    fn combine_unit_is_pipelined_at_one_third_clock() {
        let c = MachineConfig::table1(16);
        assert_eq!(c.combine_interval(), 3);
        assert_eq!(c.combine_latency, 6);
        // One 64-byte line of f64: 8 elements.
        assert_eq!(c.elems_per_line(), 8);
        assert_eq!(c.combine_line_occupancy(), 50 + 24 + 6);
    }

    #[test]
    fn flex_controller_is_slower_on_reductions_only() {
        let hw = MachineConfig::table1(16);
        let fx = MachineConfig::flex(16);
        assert!(fx.red_handler_occupancy() > hw.red_handler_occupancy());
        assert!(fx.combine_interval() > hw.combine_interval());
        // Plain coherence latency is unchanged.
        assert_eq!(fx.local_round_trip(), hw.local_round_trip());
        assert_eq!(fx.remote_round_trip(), hw.remote_round_trip());
    }

    #[test]
    fn geometry_helpers() {
        let c = MachineConfig::table1(4);
        assert_eq!(c.l1.sets(), 32 * 1024 / (2 * 64));
        assert_eq!(c.l1.lines(), 512);
        assert_eq!(c.l2.lines(), 8192);
    }

    #[test]
    fn validation_accepts_table1_and_rejects_bad_configs() {
        assert!(MachineConfig::table1(16).validate().is_ok());
        assert!(MachineConfig::table1(1).validate().is_ok());
        let mut c = MachineConfig::table1(16);
        c.nodes = 12;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::table1(16);
        c.l1.line = 48;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::table1(16);
        c.l2.line = 128;
        assert!(c.validate().is_err());
    }
}
