//! The event-driven CC-NUMA machine: processors, two-level caches, DASH-like
//! directory protocol, network ports and the PCLR reduction extensions.
//!
//! # Timing model
//!
//! Processors execute abstract instruction traces with an OoO-lite model:
//! issue-width/FU-limited compute, non-blocking misses bounded by the
//! pending-load/store limits and the instruction window of Table 1.  Memory
//! transactions are discrete events flowing between cache controllers,
//! directory controllers and network ports; controller and combine-unit
//! occupancy and port serialization provide contention ("contention is
//! accurately modeled in the entire system, except in the network, where it
//! is modeled only at the source and destination ports").
//!
//! # PCLR (Sections 5.1.1–5.1.5)
//!
//! Reduction accesses hit lines in the `Reduction` state.  A reduction miss
//! is satisfied by the **local** directory controller with a line of neutral
//! elements (no memory access, no home visit).  Displaced reduction lines
//! travel to the line's home where the directory controller's combine unit
//! merges them into memory in the background.  The end-of-loop flush drains
//! all resident reduction lines and waits for combine acknowledgements.

use crate::addr::{self, Addr, Geometry, LineAddr};
use crate::cache::{Cache, LineState, Victim};
use crate::config::MachineConfig;
use crate::directory::{DirState, Directory, MemoryData, PageTable, PlacementPolicy};
use crate::redop::RedOp;
use crate::stats::{Counters, PhaseTimes, RunStats};
use crate::trace::{Inst, Phase, TraceSource};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fill transaction classes (what the processor was waiting for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillKind {
    Load,
    Store,
    Upgrade,
    Red,
}

/// Protocol messages between caches and directory controllers.
#[derive(Debug, Clone, Copy)]
enum MsgKind {
    /// Read for sharing (load miss).
    ReadShared,
    /// Read for ownership (store miss).
    ReadExcl,
    /// Ownership upgrade for a line held Shared.
    Upgrade,
    /// Write-back of a displaced Modified line.
    WriteBack([u64; 8]),
    /// Write-back of a displaced Reduction line; combined at the home.
    /// `flush` marks flush-generated write-backs that must be acknowledged.
    RedWriteBack { data: [u64; 8], flush: bool },
    /// Reduction miss: serviced by the local controller with a neutral line.
    RedFill,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    src: u8,
    line: LineAddr,
    kind: MsgKind,
}

#[derive(Debug)]
enum Event {
    /// Give processor `p` an execution quantum.
    ProcRun { p: u8 },
    /// A protocol message arrives at `node`'s directory controller.
    DirArrive { node: u8, msg: Msg },
    /// A fill response reaches processor `p`'s cache hierarchy.
    ProcFill {
        p: u8,
        line: LineAddr,
        kind: FillKind,
        data: [u64; 8],
    },
    /// A flush-generated reduction write-back was combined at its home.
    FlushAck { p: u8 },
}

/// Why a processor is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    /// Runnable (a ProcRun event is or will be scheduled).
    None,
    /// All load MSHRs in use.
    Mshr,
    /// Instruction window full behind the oldest outstanding load.
    Window,
    /// Store buffer full.
    StoreBuf,
    /// Waiting at a barrier.
    Barrier,
    /// Waiting for flush acknowledgements.
    FlushWait,
    /// Trace exhausted.
    Done,
}

#[derive(Debug, Default)]
struct PendingStore {
    line: LineAddr,
    updates: Vec<(usize, u64)>,
}

#[derive(Debug, Default)]
struct PendingRed {
    line: LineAddr,
    seq: u64,
    updates: Vec<(usize, u64)>,
}

struct Proc {
    cycle: u64,
    stall: Stall,
    /// (line, instruction sequence number at issue) per outstanding load.
    pending_loads: Vec<(LineAddr, u64)>,
    pending_stores: Vec<PendingStore>,
    pending_red: Vec<PendingRed>,
    instr_count: u64,
    deferred: Option<Inst>,
    phase: Phase,
    phases: PhaseTimes,
    flush_outstanding: usize,
    mem_toggle: bool,
}

impl Proc {
    fn new() -> Self {
        let mut phases = PhaseTimes::default();
        phases.enter(Phase::Startup, 0);
        Proc {
            cycle: 0,
            stall: Stall::None,
            pending_loads: Vec::with_capacity(8),
            pending_stores: Vec::with_capacity(16),
            pending_red: Vec::with_capacity(8),
            instr_count: 0,
            deferred: None,
            phase: Phase::Startup,
            phases,
            flush_outstanding: 0,
            mem_toggle: false,
        }
    }

    fn oldest_load_seq(&self) -> Option<u64> {
        self.pending_loads
            .iter()
            .map(|(_, s)| *s)
            .chain(self.pending_red.iter().map(|r| r.seq))
            .min()
    }

    fn outstanding_loads(&self) -> usize {
        self.pending_loads.len() + self.pending_red.len()
    }
}

struct Node {
    l1: Cache,
    l2: Cache,
    dir: Directory,
    dir_busy: u64,
    red_unit_busy: u64,
    out_port_busy: u64,
    in_port_busy: u64,
    red_op: RedOp,
}

#[derive(Default)]
struct BarrierState {
    arrived: Vec<bool>,
    count: usize,
    max_t: u64,
}

/// The simulated multiprocessor.
pub struct Machine {
    cfg: MachineConfig,
    geom: Geometry,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    events: Vec<Option<Event>>,
    free_slots: Vec<usize>,
    seq: u64,
    nodes: Vec<Node>,
    procs: Vec<Proc>,
    traces: Vec<Box<dyn TraceSource>>,
    pages: PageTable,
    mem: MemoryData,
    barrier: BarrierState,
    counters: Counters,
    done_procs: usize,
    finished: bool,
}

impl Machine {
    /// Build a machine from a configuration and one trace per node.
    pub fn new(cfg: MachineConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        Self::with_placement(cfg, traces, PlacementPolicy::FirstTouch)
    }

    /// Build a machine with an explicit page-placement policy (the ablation
    /// harness compares first-touch with round-robin).
    pub fn with_placement(
        cfg: MachineConfig,
        traces: Vec<Box<dyn TraceSource>>,
        placement: PlacementPolicy,
    ) -> Self {
        cfg.validate().expect("invalid machine configuration");
        assert_eq!(
            traces.len(),
            cfg.nodes,
            "need exactly one trace per node ({} nodes, {} traces)",
            cfg.nodes,
            traces.len()
        );
        let geom = Geometry::new(cfg.l1.line, cfg.page_size);
        let nodes = (0..cfg.nodes)
            .map(|_| Node {
                l1: Cache::new(&cfg.l1),
                l2: Cache::new(&cfg.l2),
                dir: Directory::default(),
                dir_busy: 0,
                red_unit_busy: 0,
                out_port_busy: 0,
                in_port_busy: 0,
                red_op: RedOp::AddF64,
            })
            .collect();
        let procs = (0..cfg.nodes).map(|_| Proc::new()).collect();
        let mut m = Machine {
            geom,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            free_slots: Vec::new(),
            seq: 0,
            nodes,
            procs,
            traces,
            pages: PageTable::new(cfg.nodes, placement),
            mem: MemoryData::default(),
            barrier: BarrierState {
                arrived: vec![false; cfg.nodes],
                count: 0,
                max_t: 0,
            },
            counters: Counters::default(),
            done_procs: 0,
            finished: false,
            cfg,
        };
        for p in 0..m.cfg.nodes {
            m.push(0, Event::ProcRun { p: p as u8 });
        }
        m
    }

    /// Access the configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Pre-set one 8-byte element of simulated memory (value tracking).
    pub fn poke_memory(&mut self, a: Addr, val: u64) {
        let line = self.geom.line_of(a);
        let elem = self.geom.elem_in_line(a);
        self.mem.poke(a, line, elem, val);
    }

    /// Read one 8-byte element of simulated memory, preferring the freshest
    /// cached copy (Modified or Reduction lines override memory; reduction
    /// copies are *combined* with memory since they hold partial sums).
    pub fn peek_memory(&self, a: Addr) -> u64 {
        let line = self.geom.line_of(a);
        let elem = self.geom.elem_in_line(a);
        // Reduction lines are cached under their shadow address.
        let shadow_line = self
            .geom
            .line_of(addr::to_shadow(self.geom.line_base(line)));
        let mut val = self.mem.peek(line, elem);
        for (n, node) in self.nodes.iter().enumerate() {
            for cache in [&node.l1, &node.l2] {
                if let Some(ln) = cache
                    .iter_lines()
                    .find(|l| l.addr == line || l.addr == shadow_line)
                {
                    match ln.state {
                        LineState::Modified => return ln.data[elem],
                        LineState::Reduction => {
                            // Skip the L2 copy when L1 holds the same line:
                            // with inclusion the L1 copy is the fresh one and
                            // the L2 copy is a stale duplicate, not an
                            // independent partial.
                            if std::ptr::eq(cache, &node.l2)
                                && self.nodes[n].l1.probe(ln.addr).is_some()
                            {
                                continue;
                            }
                            val = node.red_op.apply(val, ln.data[elem]);
                        }
                        LineState::Shared => {}
                    }
                }
            }
        }
        val
    }

    fn push(&mut self, t: u64, ev: Event) {
        self.seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.events[s] = Some(ev);
                s
            }
            None => {
                self.events.push(Some(ev));
                self.events.len() - 1
            }
        };
        self.queue.push(Reverse((t, self.seq, slot)));
    }

    /// Run the simulation to completion and return the statistics.  The
    /// machine remains inspectable afterwards (`peek_memory`).
    pub fn run(&mut self) -> RunStats {
        assert!(!self.finished, "machine already ran");
        while let Some(Reverse((t, _, slot))) = self.queue.pop() {
            let ev = self.events[slot].take().expect("event slot occupied");
            self.free_slots.push(slot);
            match ev {
                Event::ProcRun { p } => self.run_proc(p as usize, t),
                Event::DirArrive { node, msg } => self.dir_arrive(node as usize, msg, t),
                Event::ProcFill {
                    p,
                    line,
                    kind,
                    data,
                } => self.proc_fill(p as usize, line, kind, data, t),
                Event::FlushAck { p } => self.flush_ack(p as usize, t),
            }
        }
        assert_eq!(
            self.done_procs,
            self.cfg.nodes,
            "event queue drained with stalled processors: deadlock \
             (unbalanced barriers or lost wakeup); stalls: {:?}",
            self.procs.iter().map(|p| p.stall).collect::<Vec<_>>()
        );
        self.finished = true;
        self.finalize()
    }

    fn finalize(&mut self) -> RunStats {
        // Drain dirty lines so memory holds final values for inspection.
        for n in 0..self.nodes.len() {
            for lvl in 0..2 {
                let drained = if lvl == 0 {
                    self.nodes[n].l1.drain_modified_lines()
                } else {
                    self.nodes[n].l2.drain_modified_lines()
                };
                for ln in drained {
                    if self.cfg.track_values {
                        self.mem.write_line(ln.addr, ln.data);
                    }
                }
            }
        }
        let mut rs = RunStats {
            counters: self.counters,
            proc_phases: self.procs.iter().map(|p| p.phases.clone()).collect(),
            proc_cycles: Vec::new(),
            total_cycles: 0,
        };
        rs.proc_cycles = rs
            .proc_phases
            .iter()
            .map(|ph| ph.records().iter().map(|(_, _, e)| *e).max().unwrap_or(0))
            .collect();
        rs.total_cycles = rs.proc_cycles.iter().copied().max().unwrap_or(0);
        rs
    }

    // ----- address helpers -------------------------------------------------

    /// Home node of a line; shadow lines home with their real alias.
    fn home_of_line(&mut self, line: LineAddr, toucher: usize) -> usize {
        let real = self
            .geom
            .line_of(addr::from_shadow(self.geom.line_base(line)));
        let page = self.geom.page_of_line(real);
        self.pages.home_of(page, toucher)
    }

    // ----- network ---------------------------------------------------------

    /// Move a message from node `src` to node `dst`, charging port
    /// occupancy; returns the arrival time.  An uncontended message incurs
    /// exactly one hop of latency.
    fn port_send(&mut self, src: usize, dst: usize, ready: u64) -> u64 {
        if src == dst {
            return ready + self.cfg.bus_latency;
        }
        let dep = ready.max(self.nodes[src].out_port_busy);
        self.nodes[src].out_port_busy = dep + self.cfg.port_occupancy;
        let arr = (dep + self.cfg.net_hop_latency).max(self.nodes[dst].in_port_busy);
        self.nodes[dst].in_port_busy = arr + self.cfg.port_occupancy;
        arr
    }

    // ----- processor execution ---------------------------------------------

    fn run_proc(&mut self, p: usize, t: u64) {
        if self.procs[p].stall == Stall::Done {
            return;
        }
        self.procs[p].stall = Stall::None;
        if self.procs[p].cycle < t {
            self.procs[p].cycle = t;
        }
        let quantum_end = self.procs[p].cycle + self.cfg.quantum;
        loop {
            if self.procs[p].cycle >= quantum_end {
                let c = self.procs[p].cycle;
                self.push(c, Event::ProcRun { p: p as u8 });
                return;
            }
            // Instruction-window stall: cannot move past the oldest
            // outstanding load by more than `window` instructions.
            if let Some(oldest) = self.procs[p].oldest_load_seq() {
                if self.procs[p].instr_count.saturating_sub(oldest) >= self.cfg.window as u64 {
                    self.procs[p].stall = Stall::Window;
                    return;
                }
            }
            let inst = match self.procs[p].deferred.take() {
                Some(i) => i,
                None => match self.traces[p].next_inst() {
                    Some(i) => i,
                    None => {
                        self.proc_done(p);
                        return;
                    }
                },
            };
            if !self.execute(p, inst) {
                return; // stalled; instruction deferred or consumed
            }
        }
    }

    fn proc_done(&mut self, p: usize) {
        let c = self.procs[p].cycle;
        self.procs[p].phases.finish(c);
        self.procs[p].stall = Stall::Done;
        self.done_procs += 1;
        // A finished processor no longer participates in barriers.
        self.check_barrier_release();
    }

    /// Execute one instruction; returns false if the processor stalled.
    fn execute(&mut self, p: usize, inst: Inst) -> bool {
        match inst {
            Inst::Work {
                ints,
                fps,
                branches,
            } => {
                let total = (ints + fps + branches) as u64;
                self.procs[p].instr_count += total;
                self.counters.instructions += total;
                let c = &self.cfg;
                let cycles = (total.div_ceil(c.issue_width as u64))
                    .max((ints as u64).div_ceil(c.int_units as u64))
                    .max((fps as u64).div_ceil(c.fp_units as u64))
                    + branches as u64 * c.branch_penalty;
                self.procs[p].cycle += cycles;
                true
            }
            Inst::Load { addr } => self.mem_access(p, addr, AccessKind::Load, 0),
            Inst::Store { addr, val } => self.mem_access(p, addr, AccessKind::Store, val),
            Inst::RedLoad { addr } => self.mem_access(p, addr, AccessKind::RedLoad, 0),
            Inst::RedUpdate { addr, val } => self.mem_access(p, addr, AccessKind::RedUpdate, val),
            Inst::ConfigPclr { op } => {
                // A system call configures the local controller (Fig. 5
                // line 1).  All processors execute it, so all nodes learn
                // the operator.
                self.nodes[p].red_op = op;
                self.procs[p].instr_count += 1;
                self.counters.instructions += 1;
                self.procs[p].cycle += 200; // syscall + controller MMIO write
                true
            }
            Inst::Flush => {
                // The flush instruction fences: all outstanding memory
                // operations (in particular in-flight reduction fills) must
                // complete before the sweep, or their lines would escape it.
                let pr = &self.procs[p];
                if !pr.pending_red.is_empty()
                    || !pr.pending_loads.is_empty()
                    || !pr.pending_stores.is_empty()
                {
                    self.procs[p].deferred = Some(Inst::Flush);
                    self.procs[p].stall = Stall::Mshr;
                    return false;
                }
                self.do_flush(p)
            }
            Inst::Barrier => {
                self.arrive_barrier(p);
                false
            }
            Inst::SetPhase(ph) => {
                let c = self.procs[p].cycle;
                self.procs[p].phase = ph;
                self.procs[p].phases.enter(ph, c);
                true
            }
        }
    }

    // ----- memory access path ----------------------------------------------

    fn charge_mem_issue(&mut self, p: usize) {
        self.procs[p].instr_count += 1;
        self.counters.instructions += 1;
        // Two ld/st units: one cycle per two memory operations.
        if self.procs[p].mem_toggle {
            self.procs[p].cycle += 1;
        }
        self.procs[p].mem_toggle = !self.procs[p].mem_toggle;
    }

    /// Charge a reduction update: a load, an FP op and a store (the
    /// `load&pin`/add/`store&unpin` triple).  Two ld/st units make the pair
    /// of memory operations cost one cycle; the FP op overlaps.
    fn charge_red_issue(&mut self, p: usize, kind: AccessKind) {
        if kind == AccessKind::RedLoad {
            self.charge_mem_issue(p);
        } else {
            self.procs[p].instr_count += 3;
            self.counters.instructions += 3;
            self.procs[p].cycle += 1;
        }
    }

    fn mem_access(&mut self, p: usize, a: Addr, kind: AccessKind, val: u64) -> bool {
        let line = self.geom.line_of(a);
        let elem = self.geom.elem_in_line(a);
        match kind {
            AccessKind::Load => {
                // Forwarding from pending transactions counts as a hit.
                if self.procs[p].pending_stores.iter().any(|s| s.line == line)
                    || self.procs[p].pending_loads.iter().any(|(l, _)| *l == line)
                {
                    self.charge_mem_issue(p);
                    self.counters.l1_hits += 1;
                    return true;
                }
                match self.cache_lookup(p, line, false) {
                    Lookup::Hit | Lookup::NeedsUpgrade => {
                        self.charge_mem_issue(p);
                        self.counters.l1_hits += 1;
                        true
                    }
                    Lookup::L2Hit => {
                        self.charge_mem_issue(p);
                        self.counters.l2_hits += 1;
                        self.promote_to_l1(p, line, false);
                        self.procs[p].cycle += self.cfg.l2.latency;
                        true
                    }
                    Lookup::Miss => {
                        if self.procs[p].outstanding_loads() >= self.cfg.max_pending_loads {
                            self.procs[p].deferred = Some(Inst::Load { addr: a });
                            self.procs[p].stall = Stall::Mshr;
                            return false;
                        }
                        self.charge_mem_issue(p);
                        let seq = self.procs[p].instr_count;
                        self.procs[p].pending_loads.push((line, seq));
                        self.start_transaction(p, line, MsgKind::ReadShared);
                        true
                    }
                }
            }
            AccessKind::Store => {
                if let Some(ps) = self.procs[p]
                    .pending_stores
                    .iter_mut()
                    .find(|s| s.line == line)
                {
                    ps.updates.push((elem, val));
                    self.charge_mem_issue(p);
                    self.counters.l1_hits += 1;
                    return true;
                }
                match self.cache_lookup(p, line, true) {
                    Lookup::Hit => {
                        self.charge_mem_issue(p);
                        self.counters.l1_hits += 1;
                        if self.cfg.track_values {
                            self.write_elem(p, line, elem, val);
                        }
                        true
                    }
                    Lookup::L2Hit => {
                        self.charge_mem_issue(p);
                        self.counters.l2_hits += 1;
                        self.promote_to_l1(p, line, true);
                        self.procs[p].cycle += self.cfg.l2.latency;
                        if self.cfg.track_values {
                            self.write_elem(p, line, elem, val);
                        }
                        true
                    }
                    Lookup::NeedsUpgrade => {
                        if self.procs[p].pending_stores.len() >= self.cfg.max_pending_stores {
                            self.procs[p].deferred = Some(Inst::Store { addr: a, val });
                            self.procs[p].stall = Stall::StoreBuf;
                            return false;
                        }
                        self.charge_mem_issue(p);
                        self.procs[p].pending_stores.push(PendingStore {
                            line,
                            updates: vec![(elem, val)],
                        });
                        self.start_transaction(p, line, MsgKind::Upgrade);
                        true
                    }
                    Lookup::Miss => {
                        if self.procs[p].pending_stores.len() >= self.cfg.max_pending_stores {
                            self.procs[p].deferred = Some(Inst::Store { addr: a, val });
                            self.procs[p].stall = Stall::StoreBuf;
                            return false;
                        }
                        self.charge_mem_issue(p);
                        self.procs[p].pending_stores.push(PendingStore {
                            line,
                            updates: vec![(elem, val)],
                        });
                        self.start_transaction(p, line, MsgKind::ReadExcl);
                        true
                    }
                }
            }
            AccessKind::RedLoad | AccessKind::RedUpdate => {
                self.red_access(p, a, line, elem, kind, val)
            }
        }
    }

    fn red_access(
        &mut self,
        p: usize,
        a: Addr,
        line: LineAddr,
        elem: usize,
        kind: AccessKind,
        val: u64,
    ) -> bool {
        // Forward into an outstanding reduction fill.
        if let Some(pr) = self.procs[p]
            .pending_red
            .iter_mut()
            .find(|r| r.line == line)
        {
            if kind == AccessKind::RedUpdate {
                pr.updates.push((elem, val));
            }
            self.charge_red_issue(p, kind);
            self.counters.l1_hits += 1;
            return true;
        }
        // Hit on a line already in reduction state?
        let l1_state = self.nodes[p].l1.lookup(line);
        if l1_state == Some(LineState::Reduction) {
            self.charge_red_issue(p, kind);
            self.counters.l1_hits += 1;
            if self.cfg.track_values && kind == AccessKind::RedUpdate {
                let op = self.nodes[p].red_op;
                if let Some(ln) = self.nodes[p].l1.line_mut(line) {
                    ln.data[elem] = op.apply(ln.data[elem], val);
                }
            }
            return true;
        }
        if l1_state.is_none() {
            let l2_state = self.nodes[p].l2.lookup(line);
            if l2_state == Some(LineState::Reduction) {
                self.charge_red_issue(p, kind);
                self.counters.l2_hits += 1;
                self.procs[p].cycle += self.cfg.l2.latency;
                self.promote_red_to_l1(p, line);
                if self.cfg.track_values && kind == AccessKind::RedUpdate {
                    let op = self.nodes[p].red_op;
                    if let Some(ln) = self.nodes[p].l1.line_mut(line) {
                        ln.data[elem] = op.apply(ln.data[elem], val);
                    }
                }
                return true;
            }
            // A non-reduction copy lingering in L2 (Section 5.1.2): write it
            // back if dirty, invalidate, then miss as a reduction access.
            if let Some(st) = l2_state {
                self.evict_plain_for_reduction(p, line, st, /*level2=*/ true);
            }
        } else if let Some(st) = l1_state {
            // Plain copy in L1 (and, by inclusion, in L2).
            self.evict_plain_for_reduction(p, line, st, false);
        }
        // Reduction miss.
        if self.procs[p].outstanding_loads() >= self.cfg.max_pending_loads {
            self.procs[p].deferred = Some(match kind {
                AccessKind::RedLoad => Inst::RedLoad { addr: a },
                _ => Inst::RedUpdate { addr: a, val },
            });
            self.procs[p].stall = Stall::Mshr;
            return false;
        }
        self.charge_red_issue(p, kind);
        let seq = self.procs[p].instr_count;
        let mut pr = PendingRed {
            line,
            seq,
            updates: Vec::new(),
        };
        if kind == AccessKind::RedUpdate {
            pr.updates.push((elem, val));
        }
        self.procs[p].pending_red.push(pr);
        self.start_transaction(p, line, MsgKind::RedFill);
        true
    }

    /// Remove a plain-state copy of `line` so it can be re-fetched in the
    /// reduction state ("irrespective of its state, the line is then
    /// invalidated", Section 5.1.2).
    fn evict_plain_for_reduction(&mut self, p: usize, line: LineAddr, st: LineState, l2: bool) {
        if !l2 {
            let ln = self.nodes[p].l1.invalidate(line);
            // Inclusion: the L2 copy also goes.
            let l2ln = self.nodes[p].l2.invalidate(line);
            let data = ln
                .map(|l| l.data)
                .or(l2ln.map(|l| l.data))
                .unwrap_or([0; 8]);
            if st == LineState::Modified || l2ln.map(|l| l.state) == Some(LineState::Modified) {
                self.counters.writebacks += 1;
                self.start_transaction(p, line, MsgKind::WriteBack(data));
            }
        } else if let Some(ln) = self.nodes[p].l2.invalidate(line) {
            if ln.state == LineState::Modified {
                self.counters.writebacks += 1;
                self.start_transaction(p, line, MsgKind::WriteBack(ln.data));
            }
        }
    }

    // ----- cache bookkeeping -----------------------------------------------

    fn cache_lookup(&mut self, p: usize, line: LineAddr, write: bool) -> Lookup {
        match self.nodes[p].l1.lookup(line) {
            Some(LineState::Modified) => Lookup::Hit,
            Some(LineState::Shared) => {
                if write {
                    Lookup::NeedsUpgrade
                } else {
                    Lookup::Hit
                }
            }
            Some(LineState::Reduction) => {
                // Plain access to a reduction line: flush it home first,
                // then miss (the traces we generate never do this during a
                // loop; it can happen across phases).
                let ln = self.nodes[p].l1.invalidate(line).expect("just looked up");
                self.nodes[p].l2.invalidate(line);
                self.send_red_writeback(p, line, ln.data, false);
                Lookup::Miss
            }
            None => match self.nodes[p].l2.lookup(line) {
                Some(LineState::Modified) => Lookup::L2Hit,
                Some(LineState::Shared) => {
                    if write {
                        Lookup::NeedsUpgrade
                    } else {
                        Lookup::L2Hit
                    }
                }
                Some(LineState::Reduction) => {
                    let ln = self.nodes[p].l2.invalidate(line).expect("just looked up");
                    self.send_red_writeback(p, line, ln.data, false);
                    Lookup::Miss
                }
                None => Lookup::Miss,
            },
        }
    }

    fn write_elem(&mut self, p: usize, line: LineAddr, elem: usize, val: u64) {
        if let Some(ln) = self.nodes[p].l1.line_mut(line) {
            ln.data[elem] = val;
        } else if let Some(ln) = self.nodes[p].l2.line_mut(line) {
            ln.data[elem] = val;
        }
    }

    /// Copy an L2-resident line into L1 (L1 fill on an L2 hit).
    fn promote_to_l1(&mut self, p: usize, line: LineAddr, write: bool) {
        let (state, data) = match self.nodes[p].l2.line_mut(line) {
            Some(ln) => (ln.state, ln.data),
            None => return,
        };
        let st = if write { LineState::Modified } else { state };
        if write {
            self.nodes[p].l2.set_state(line, LineState::Modified);
        }
        if let Some(v) = self.nodes[p].l1.insert(line, st, data) {
            self.l1_victim(p, v);
        }
    }

    fn promote_red_to_l1(&mut self, p: usize, line: LineAddr) {
        let data = match self.nodes[p].l2.line_mut(line) {
            Some(ln) => ln.data,
            None => return,
        };
        if let Some(v) = self.nodes[p].l1.insert(line, LineState::Reduction, data) {
            self.l1_victim(p, v);
        }
    }

    /// Handle a line displaced from L1: fold it into its (inclusive) L2
    /// copy.
    fn l1_victim(&mut self, p: usize, v: Victim) {
        match v.state {
            LineState::Shared => {}
            LineState::Modified => {
                if self.nodes[p].l2.set_state(v.addr, LineState::Modified) {
                    if self.cfg.track_values {
                        if let Some(ln) = self.nodes[p].l2.line_mut(v.addr) {
                            ln.data = v.data;
                        }
                    }
                } else {
                    // Inclusion was broken by an L2 eviction racing this
                    // victim; send it home directly.
                    self.counters.writebacks += 1;
                    self.start_transaction(p, v.addr, MsgKind::WriteBack(v.data));
                }
            }
            LineState::Reduction => {
                if let Some(ln) = self.nodes[p].l2.line_mut(v.addr) {
                    ln.data = v.data;
                } else {
                    self.send_red_writeback(p, v.addr, v.data, false);
                }
            }
        }
    }

    /// Handle a line displaced from L2: enforce inclusion, then write back
    /// dirty or reduction contents.
    fn l2_victim(&mut self, p: usize, v: Victim) {
        let mut data = v.data;
        let mut state = v.state;
        if let Some(l1ln) = self.nodes[p].l1.invalidate(v.addr) {
            data = l1ln.data;
            if l1ln.state == LineState::Modified {
                state = LineState::Modified;
            }
        }
        match state {
            LineState::Shared => {}
            LineState::Modified => {
                self.counters.writebacks += 1;
                self.start_transaction(p, v.addr, MsgKind::WriteBack(data));
            }
            LineState::Reduction => {
                self.send_red_writeback(p, v.addr, data, false);
            }
        }
    }

    fn send_red_writeback(&mut self, p: usize, line: LineAddr, data: [u64; 8], flush: bool) {
        if flush {
            self.counters.red_flushed += 1;
        } else {
            self.counters.red_displaced += 1;
        }
        self.start_transaction(p, line, MsgKind::RedWriteBack { data, flush });
    }

    /// Install a fill into both cache levels, handling displacements.
    fn install(&mut self, p: usize, line: LineAddr, st: LineState, data: [u64; 8]) {
        // The line may already be resident (e.g., racing upgrade): update.
        if self.nodes[p].l2.probe(line).is_some() {
            self.nodes[p].l2.set_state(line, st);
            if self.cfg.track_values {
                if let Some(ln) = self.nodes[p].l2.line_mut(line) {
                    ln.data = data;
                }
            }
        } else if let Some(v) = self.nodes[p].l2.insert(line, st, data) {
            self.l2_victim(p, v);
        }
        if self.nodes[p].l1.probe(line).is_some() {
            self.nodes[p].l1.set_state(line, st);
            if self.cfg.track_values {
                if let Some(ln) = self.nodes[p].l1.line_mut(line) {
                    ln.data = data;
                }
            }
        } else if let Some(v) = self.nodes[p].l1.insert(line, st, data) {
            self.l1_victim(p, v);
        }
    }

    // ----- transactions ----------------------------------------------------

    /// Begin a memory transaction from processor `p`: the request leaves the
    /// cache hierarchy and arrives at the local directory controller.
    fn start_transaction(&mut self, p: usize, line: LineAddr, kind: MsgKind) {
        let lookup = self.cfg.l1.latency + self.cfg.l2.latency + self.cfg.bus_latency;
        let t = self.procs[p].cycle + lookup;
        self.push(
            t,
            Event::DirArrive {
                node: p as u8,
                msg: Msg {
                    src: p as u8,
                    line,
                    kind,
                },
            },
        );
    }

    fn dir_arrive(&mut self, node: usize, msg: Msg, t: u64) {
        let src = msg.src as usize;
        let home = self.home_of_line(msg.line, src);
        match msg.kind {
            MsgKind::RedFill => {
                // Serviced locally: the controller supplies a neutral line.
                debug_assert_eq!(node, src, "reduction fills never leave the node");
                let occ = self.cfg.red_handler_occupancy();
                let start = t.max(self.nodes[node].dir_busy);
                self.nodes[node].dir_busy = start + 2 * occ;
                self.counters.red_fills += 1;
                let neutral = self.nodes[node].red_op.neutral();
                let ready = start + 2 * occ;
                let fill = ready + self.cfg.bus_latency + self.cfg.l2.latency + self.cfg.l1.latency;
                self.push(
                    fill,
                    Event::ProcFill {
                        p: src as u8,
                        line: msg.line,
                        kind: FillKind::Red,
                        data: [neutral; 8],
                    },
                );
            }
            MsgKind::ReadShared | MsgKind::ReadExcl | MsgKind::Upgrade => {
                if node != home {
                    // Local controller snoops the outbound request, then the
                    // network carries it to the home.
                    let occ = self.cfg.dir_occupancy;
                    let start = t.max(self.nodes[node].dir_busy);
                    self.nodes[node].dir_busy = start + occ;
                    let arr = self.port_send(node, home, start + occ);
                    self.push(
                        arr,
                        Event::DirArrive {
                            node: home as u8,
                            msg,
                        },
                    );
                } else {
                    self.home_handle_request(home, msg, t);
                }
            }
            MsgKind::WriteBack(_) | MsgKind::RedWriteBack { .. } => {
                if node != home {
                    let occ = self.cfg.dir_occupancy;
                    let start = t.max(self.nodes[node].dir_busy);
                    self.nodes[node].dir_busy = start + occ;
                    let arr = self.port_send(node, home, start + occ);
                    self.push(
                        arr,
                        Event::DirArrive {
                            node: home as u8,
                            msg,
                        },
                    );
                } else {
                    self.home_handle_writeback(home, msg, t);
                }
            }
        }
    }

    fn home_handle_request(&mut self, home: usize, msg: Msg, t: u64) {
        let src = msg.src as usize;
        let line = msg.line;
        let occ = self.cfg.dir_occupancy;
        let start = t.max(self.nodes[home].dir_busy);
        self.nodes[home].dir_busy = start + 2 * occ;
        self.counters.mem_accesses += 1;
        if src == home {
            self.counters.local_misses += 1;
        } else {
            self.counters.remote_misses += 1;
        }

        let mut extra = 0u64;
        let state = self.nodes[home].dir.state(line);
        match state {
            DirState::Dirty(owner) => {
                let owner = owner as usize;
                self.counters.recalls += 1;
                // Recall the dirty copy: home -> owner -> home.
                extra += if owner == home {
                    2 * self.cfg.bus_latency
                } else {
                    2 * self.cfg.net_hop_latency + self.cfg.bus_latency
                };
                let data = self.recall_from(owner, line);
                if self.cfg.track_values {
                    if let Some(d) = data {
                        self.mem.write_line(line, d);
                    }
                }
            }
            DirState::Shared(_) => {
                if matches!(msg.kind, MsgKind::ReadExcl | MsgKind::Upgrade) {
                    let sharers: Vec<usize> = state.sharers().filter(|&s| s != src).collect();
                    if !sharers.is_empty() {
                        self.counters.invalidations += sharers.len() as u64;
                        let remote = sharers.iter().any(|&s| s != home);
                        extra += if remote {
                            2 * self.cfg.net_hop_latency
                        } else {
                            2 * self.cfg.bus_latency
                        };
                        for s in sharers {
                            self.invalidate_at(s, line);
                        }
                    }
                }
            }
            DirState::Uncached => {}
        }

        let (fill_kind, new_state) = match msg.kind {
            MsgKind::ReadShared => {
                let mut st = self.nodes[home].dir.state(line);
                if matches!(st, DirState::Dirty(_)) {
                    st = DirState::Uncached;
                }
                let mut st = if matches!(st, DirState::Uncached) {
                    DirState::Shared(0)
                } else {
                    st
                };
                st.add_sharer(src);
                (FillKind::Load, st)
            }
            MsgKind::ReadExcl => (FillKind::Store, DirState::Dirty(src as u8)),
            MsgKind::Upgrade => (FillKind::Upgrade, DirState::Dirty(src as u8)),
            _ => unreachable!(),
        };
        self.nodes[home].dir.set_state(line, new_state);

        let data = if self.cfg.track_values {
            self.mem.read_line(line)
        } else {
            [0; 8]
        };
        let ready = start + occ + extra + self.cfg.mem_latency + occ;
        let fill_arrival = if src == home {
            ready + self.cfg.bus_latency
        } else {
            self.port_send(home, src, ready) + self.cfg.bus_latency
        };
        let fill = fill_arrival + self.cfg.l2.latency + self.cfg.l1.latency;
        self.push(
            fill,
            Event::ProcFill {
                p: src as u8,
                line,
                kind: fill_kind,
                data,
            },
        );
    }

    fn home_handle_writeback(&mut self, home: usize, msg: Msg, t: u64) {
        let line = msg.line;
        match msg.kind {
            MsgKind::WriteBack(data) => {
                let occ = self.cfg.dir_occupancy;
                let start = t.max(self.nodes[home].dir_busy);
                self.nodes[home].dir_busy = start + occ;
                if self.cfg.track_values {
                    self.mem.write_line(line, data);
                }
                // Only clear ownership if this writer still owns the line.
                if let DirState::Dirty(o) = self.nodes[home].dir.state(line) {
                    if o == msg.src {
                        self.nodes[home].dir.set_state(line, DirState::Uncached);
                    }
                }
            }
            MsgKind::RedWriteBack { data, flush } => {
                let occ = self.cfg.red_handler_occupancy();
                let start = t.max(self.nodes[home].dir_busy);
                self.nodes[home].dir_busy = start + occ;
                // Section 5.1.3: recall or invalidate lingering
                // non-reduction copies before combining.  The write-backs
                // use the *real* line address for directory purposes.
                let real = self
                    .geom
                    .line_of(addr::from_shadow(self.geom.line_base(line)));
                let mut extra = 0u64;
                match self.nodes[home].dir.state(real) {
                    DirState::Dirty(owner) => {
                        self.counters.recalls += 1;
                        let owner = owner as usize;
                        extra += if owner == home {
                            2 * self.cfg.bus_latency
                        } else {
                            2 * self.cfg.net_hop_latency
                        };
                        if let Some(d) = self.recall_from(owner, real) {
                            if self.cfg.track_values {
                                self.mem.write_line(real, d);
                            }
                        }
                        self.nodes[home].dir.set_state(real, DirState::Uncached);
                    }
                    DirState::Shared(_) => {
                        let sharers: Vec<usize> =
                            self.nodes[home].dir.state(real).sharers().collect();
                        self.counters.invalidations += sharers.len() as u64;
                        for s in sharers {
                            self.invalidate_at(s, real);
                        }
                        self.nodes[home].dir.set_state(real, DirState::Uncached);
                    }
                    DirState::Uncached => {}
                }
                // Queue the line on the combine unit.
                let unit_start = (start + occ + extra).max(self.nodes[home].red_unit_busy);
                let cfg_occ = self.cfg.combine_line_occupancy();
                self.nodes[home].red_unit_busy = unit_start + cfg_occ;
                self.counters.combines += self.cfg.elems_per_line() as u64;
                if self.cfg.track_values {
                    let op = self.nodes[home].red_op;
                    let mut cur = self.mem.read_line(real);
                    for (i, c) in cur.iter_mut().enumerate() {
                        *c = op.apply(*c, data[i]);
                    }
                    self.mem.write_line(real, cur);
                }
                if flush {
                    let done = unit_start + cfg_occ;
                    let src = msg.src as usize;
                    let arr = if src == home {
                        done + self.cfg.bus_latency
                    } else {
                        self.port_send(home, src, done)
                    };
                    self.push(arr, Event::FlushAck { p: msg.src });
                }
            }
            _ => unreachable!(),
        }
    }

    /// Remove a dirty line from a remote cache (recall); returns its data.
    fn recall_from(&mut self, owner: usize, line: LineAddr) -> Option<[u64; 8]> {
        let l1 = self.nodes[owner].l1.invalidate(line);
        let l2 = self.nodes[owner].l2.invalidate(line);
        match (l1, l2) {
            (Some(a), _) => Some(a.data),
            (None, Some(b)) => Some(b.data),
            (None, None) => None,
        }
    }

    fn invalidate_at(&mut self, node: usize, line: LineAddr) {
        self.nodes[node].l1.invalidate(line);
        self.nodes[node].l2.invalidate(line);
    }

    // ----- fills -------------------------------------------------------------

    fn proc_fill(&mut self, p: usize, line: LineAddr, kind: FillKind, data: [u64; 8], t: u64) {
        match kind {
            FillKind::Load => {
                self.install(p, line, LineState::Shared, data);
                self.procs[p].pending_loads.retain(|(l, _)| *l != line);
            }
            FillKind::Store | FillKind::Upgrade => {
                let mut d = data;
                let idx = self.procs[p]
                    .pending_stores
                    .iter()
                    .position(|s| s.line == line);
                if let Some(i) = idx {
                    let ps = self.procs[p].pending_stores.remove(i);
                    if self.cfg.track_values {
                        for (e, v) in ps.updates {
                            d[e] = v;
                        }
                    }
                }
                self.install(p, line, LineState::Modified, d);
            }
            FillKind::Red => {
                let mut d = data;
                let idx = self.procs[p]
                    .pending_red
                    .iter()
                    .position(|r| r.line == line);
                if let Some(i) = idx {
                    let pr = self.procs[p].pending_red.remove(i);
                    if self.cfg.track_values {
                        let op = self.nodes[p].red_op;
                        for (e, v) in pr.updates {
                            d[e] = op.apply(d[e], v);
                        }
                    }
                }
                self.install(p, line, LineState::Reduction, d);
            }
        }
        // Wake the processor if this fill cleared its stall condition.
        match self.procs[p].stall {
            Stall::Mshr | Stall::Window | Stall::StoreBuf => {
                self.procs[p].stall = Stall::None;
                let wake = t.max(self.procs[p].cycle);
                self.push(wake, Event::ProcRun { p: p as u8 });
            }
            _ => {}
        }
    }

    // ----- flush -------------------------------------------------------------

    fn do_flush(&mut self, p: usize) -> bool {
        // The sweep walks the caches; cost proportional to cache size, not
        // to the reduction array ("the work is at worst proportional to the
        // size of the cache").
        let sweep = (self.cfg.l1.lines() + self.cfg.l2.lines()) as u64 / 4;
        self.procs[p].cycle += sweep;
        self.procs[p].instr_count += 1;
        self.counters.instructions += 1;

        // Merge L1 reduction copies into their (inclusive) L2 copies, then
        // drain L2.
        let l1_red = self.nodes[p].l1.drain_reduction_lines();
        for ln in l1_red {
            if let Some(l2ln) = self.nodes[p].l2.line_mut(ln.addr) {
                l2ln.data = ln.data;
            } else {
                // Inclusion broken (L2 displaced it earlier): send directly.
                self.send_red_writeback(p, ln.addr, ln.data, true);
                self.procs[p].flush_outstanding += 1;
            }
        }
        // Drain L2 reduction lines; network-port occupancy paces the
        // resulting burst of write-backs toward the homes.
        let drained = self.nodes[p].l2.drain_reduction_lines();
        for ln in &drained {
            self.send_red_writeback(p, ln.addr, ln.data, true);
            self.procs[p].flush_outstanding += 1;
        }
        if self.procs[p].flush_outstanding > 0 {
            self.procs[p].stall = Stall::FlushWait;
            false
        } else {
            true
        }
    }

    fn flush_ack(&mut self, p: usize, t: u64) {
        self.procs[p].flush_outstanding -= 1;
        if self.procs[p].flush_outstanding == 0 && self.procs[p].stall == Stall::FlushWait {
            self.procs[p].stall = Stall::None;
            let wake = t.max(self.procs[p].cycle);
            self.push(wake, Event::ProcRun { p: p as u8 });
        }
    }

    // ----- barrier -----------------------------------------------------------

    fn arrive_barrier(&mut self, p: usize) {
        assert!(
            !self.barrier.arrived[p],
            "double barrier arrival by proc {p}"
        );
        self.barrier.arrived[p] = true;
        self.barrier.count += 1;
        self.barrier.max_t = self.barrier.max_t.max(self.procs[p].cycle);
        self.procs[p].stall = Stall::Barrier;
        self.check_barrier_release();
    }

    fn check_barrier_release(&mut self) {
        let active = self.cfg.nodes - self.done_procs;
        if active == 0 || self.barrier.count < active {
            return;
        }
        // Everyone still running has arrived: release.
        let release = self.barrier.max_t + 2 * self.cfg.bus_latency;
        self.counters.barriers += 1;
        let arrived = std::mem::replace(&mut self.barrier.arrived, vec![false; self.cfg.nodes]);
        self.barrier.count = 0;
        self.barrier.max_t = 0;
        for (p, was) in arrived.into_iter().enumerate() {
            if was {
                self.procs[p].stall = Stall::None;
                self.procs[p].cycle = release;
                self.push(release, Event::ProcRun { p: p as u8 });
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    RedLoad,
    RedUpdate,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lookup {
    Hit,
    L2Hit,
    NeedsUpgrade,
    Miss,
}
