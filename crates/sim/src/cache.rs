//! Set-associative write-back caches with the extra PCLR **Reduction**
//! state (Section 5.1.1).
//!
//! Lines in the `Reduction` state are non-coherent: the processor reads and
//! writes them without invalidations even though other processors may cache
//! the same memory line.  Misses by reduction accesses and displacements of
//! reduction lines trigger the special PCLR transactions handled by the
//! directory controllers.

use crate::addr::LineAddr;
use crate::config::CacheConfig;

/// Cache line coherence states.  `Modified` covers both the exclusive and
/// dirty cases of a DASH-like protocol (we model an MSI base protocol,
/// which is sufficient for the traffic classes the paper measures), and
/// `Reduction` is the PCLR private-accumulation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Present, read-only, possibly shared with other caches.
    Shared,
    /// Present, writable, dirty with respect to memory.
    Modified,
    /// PCLR reduction state: non-coherent private accumulation storage.
    Reduction,
}

/// One resident cache line.
#[derive(Debug, Clone, Copy)]
pub struct Line {
    /// Line address (byte address >> line shift).
    pub addr: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// Pinned lines are skipped by victim selection (`load&pin`).
    pub pinned: bool,
    /// LRU timestamp.
    lru: u64,
    /// Data payload (raw 8-byte elements); maintained only when value
    /// tracking is enabled.
    pub data: [u64; 8],
}

/// The outcome of inserting a line: a displaced victim, if any.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Victim {
    /// The displaced line address.
    pub addr: LineAddr,
    /// Its state at displacement.
    pub state: LineState,
    /// Its payload.
    pub data: [u64; 8],
}

/// A set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    assoc: usize,
    set_mask: u64,
    tick: u64,
    /// Number of resident lines in `Reduction` state (kept incrementally so
    /// flush cost accounting is O(1)).
    red_lines: usize,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two());
        Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(cfg.assoc)).collect(),
            assoc: cfg.assoc,
            set_mask: sets as u64 - 1,
            tick: 0,
            red_lines: 0,
        }
    }

    #[inline]
    fn set_of(&self, l: LineAddr) -> usize {
        (l & self.set_mask) as usize
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Total lines currently resident.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Lines currently in the `Reduction` state.
    pub fn reduction_lines(&self) -> usize {
        self.red_lines
    }

    /// Look up a line, updating LRU on hit.  Returns its state.
    pub fn lookup(&mut self, l: LineAddr) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(l);
        self.sets[set].iter_mut().find(|ln| ln.addr == l).map(|ln| {
            ln.lru = tick;
            ln.state
        })
    }

    /// Look up without touching LRU (for snoops from the protocol side).
    pub fn probe(&self, l: LineAddr) -> Option<LineState> {
        let set = self.set_of(l);
        self.sets[set]
            .iter()
            .find(|ln| ln.addr == l)
            .map(|ln| ln.state)
    }

    /// Mutable access to a resident line (protocol actions, data updates).
    pub fn line_mut(&mut self, l: LineAddr) -> Option<&mut Line> {
        let set = self.set_of(l);
        self.sets[set].iter_mut().find(|ln| ln.addr == l)
    }

    /// Change the state of a resident line.  Returns false if not present.
    pub fn set_state(&mut self, l: LineAddr, st: LineState) -> bool {
        let set = self.set_of(l);
        if let Some(ln) = self.sets[set].iter_mut().find(|ln| ln.addr == l) {
            if ln.state == LineState::Reduction && st != LineState::Reduction {
                self.red_lines -= 1;
            } else if ln.state != LineState::Reduction && st == LineState::Reduction {
                self.red_lines += 1;
            }
            ln.state = st;
            true
        } else {
            false
        }
    }

    /// Remove a line (invalidation or recall).  Returns it if present.
    pub fn invalidate(&mut self, l: LineAddr) -> Option<Line> {
        let set = self.set_of(l);
        let pos = self.sets[set].iter().position(|ln| ln.addr == l)?;
        let ln = self.sets[set].swap_remove(pos);
        if ln.state == LineState::Reduction {
            self.red_lines -= 1;
        }
        Some(ln)
    }

    /// Insert a line, evicting an unpinned LRU victim if the set is full.
    ///
    /// Reduction lines are not given replacement priority by default; the
    /// paper relies on ordinary LRU so that reduction lines displaced during
    /// the loop are combined in the background.  Pinned lines are never
    /// victims.
    pub fn insert(&mut self, l: LineAddr, st: LineState, data: [u64; 8]) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let assoc = self.assoc;
        let set = self.set_of(l);
        debug_assert!(
            self.sets[set].iter().all(|ln| ln.addr != l),
            "insert of already-resident line {l:#x}"
        );
        let mut victim = None;
        if self.sets[set].len() >= assoc {
            // Choose the LRU unpinned way.
            let candidates = &self.sets[set];
            let vi = candidates
                .iter()
                .enumerate()
                .filter(|(_, ln)| !ln.pinned)
                .min_by_key(|(_, ln)| ln.lru)
                .map(|(i, _)| i);
            match vi {
                Some(i) => {
                    let v = self.sets[set].swap_remove(i);
                    if v.state == LineState::Reduction {
                        self.red_lines -= 1;
                    }
                    victim = Some(Victim {
                        addr: v.addr,
                        state: v.state,
                        data: v.data,
                    });
                }
                None => {
                    // Entire set pinned: the insert fails silently; callers
                    // avoid this by never pinning whole sets.  We still make
                    // room by evicting the LRU pinned line to preserve
                    // forward progress (and count it as a victim).
                    let i = self.sets[set]
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, ln)| ln.lru)
                        .map(|(i, _)| i)
                        .expect("nonempty set");
                    let v = self.sets[set].swap_remove(i);
                    if v.state == LineState::Reduction {
                        self.red_lines -= 1;
                    }
                    victim = Some(Victim {
                        addr: v.addr,
                        state: v.state,
                        data: v.data,
                    });
                }
            }
        }
        if st == LineState::Reduction {
            self.red_lines += 1;
        }
        self.sets[set].push(Line {
            addr: l,
            state: st,
            pinned: false,
            lru: tick,
            data,
        });
        victim
    }

    /// Pin or unpin a resident line.
    pub fn set_pinned(&mut self, l: LineAddr, pinned: bool) -> bool {
        if let Some(ln) = self.line_mut(l) {
            ln.pinned = pinned;
            true
        } else {
            false
        }
    }

    /// Drain every line in `Reduction` state, removing them from the cache
    /// (the flush step at the end of a PCLR loop).
    pub fn drain_reduction_lines(&mut self) -> Vec<Line> {
        let mut out = Vec::with_capacity(self.red_lines);
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if set[i].state == LineState::Reduction {
                    out.push(set.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.red_lines = 0;
        out
    }

    /// Drain every line in `Modified` state (simulation teardown so that
    /// memory holds final values).
    pub fn drain_modified_lines(&mut self) -> Vec<Line> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if set[i].state == LineState::Modified {
                    out.push(set.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Iterate over all resident lines (diagnostics, invariant checks).
    pub fn iter_lines(&self) -> impl Iterator<Item = &Line> {
        self.sets.iter().flat_map(|s| s.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways, 64B lines.
        Cache::new(&CacheConfig {
            size: 4 * 2 * 64,
            assoc: 2,
            line: 64,
            latency: 1,
        })
    }

    const D: [u64; 8] = [0; 8];

    #[test]
    fn hit_and_miss() {
        let mut c = small();
        assert_eq!(c.lookup(0x10), None);
        assert!(c.insert(0x10, LineState::Shared, D).is_none());
        assert_eq!(c.lookup(0x10), Some(LineState::Shared));
        assert_eq!(c.probe(0x10), Some(LineState::Shared));
        assert_eq!(c.probe(0x14), None);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        assert!(c.insert(0, LineState::Shared, D).is_none());
        assert!(c.insert(4, LineState::Shared, D).is_none());
        // Touch 0 so 4 is LRU.
        assert_eq!(c.lookup(0), Some(LineState::Shared));
        let v = c.insert(8, LineState::Shared, D).expect("eviction");
        assert_eq!(v.addr, 4);
        assert_eq!(c.probe(0), Some(LineState::Shared));
        assert_eq!(c.probe(8), Some(LineState::Shared));
        assert_eq!(c.probe(4), None);
    }

    #[test]
    fn modified_victim_reports_state_and_data() {
        let mut c = small();
        let mut d = D;
        d[3] = 42;
        assert!(c.insert(0, LineState::Modified, d).is_none());
        assert!(c.insert(4, LineState::Shared, D).is_none());
        assert_eq!(c.lookup(4), Some(LineState::Shared)); // 0 becomes LRU
        let v = c.insert(8, LineState::Shared, D).unwrap();
        assert_eq!(v.addr, 0);
        assert_eq!(v.state, LineState::Modified);
        assert_eq!(v.data[3], 42);
    }

    #[test]
    fn reduction_line_count_tracks_inserts_invalidates_and_state_changes() {
        let mut c = small();
        assert_eq!(c.reduction_lines(), 0);
        c.insert(0, LineState::Reduction, D);
        c.insert(1, LineState::Reduction, D);
        c.insert(2, LineState::Shared, D);
        assert_eq!(c.reduction_lines(), 2);
        c.invalidate(0);
        assert_eq!(c.reduction_lines(), 1);
        c.set_state(2, LineState::Reduction);
        assert_eq!(c.reduction_lines(), 2);
        c.set_state(1, LineState::Shared);
        assert_eq!(c.reduction_lines(), 1);
    }

    #[test]
    fn drain_reduction_lines_empties_only_reduction_state() {
        let mut c = small();
        c.insert(0, LineState::Reduction, D);
        c.insert(1, LineState::Shared, D);
        c.insert(2, LineState::Modified, D);
        c.insert(4, LineState::Reduction, D);
        let drained = c.drain_reduction_lines();
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|l| l.state == LineState::Reduction));
        assert_eq!(c.reduction_lines(), 0);
        assert_eq!(c.resident(), 2);
        assert_eq!(c.probe(1), Some(LineState::Shared));
        assert_eq!(c.probe(2), Some(LineState::Modified));
    }

    #[test]
    fn drain_modified_lines_for_teardown() {
        let mut c = small();
        c.insert(0, LineState::Modified, D);
        c.insert(1, LineState::Shared, D);
        let drained = c.drain_modified_lines();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].addr, 0);
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn pinned_lines_survive_eviction_pressure() {
        let mut c = small();
        c.insert(0, LineState::Reduction, D);
        assert!(c.set_pinned(0, true));
        c.insert(4, LineState::Shared, D);
        // Set 0 now full; inserting line 8 must evict the unpinned line 4
        // even though line 0 is older.
        let v = c.insert(8, LineState::Shared, D).unwrap();
        assert_eq!(v.addr, 4);
        assert_eq!(c.probe(0), Some(LineState::Reduction));
        assert!(c.set_pinned(0, false));
    }

    #[test]
    fn fully_pinned_set_still_makes_progress() {
        let mut c = small();
        c.insert(0, LineState::Reduction, D);
        c.insert(4, LineState::Reduction, D);
        c.set_pinned(0, true);
        c.set_pinned(4, true);
        // Forced eviction of a pinned line rather than deadlock.
        let v = c.insert(8, LineState::Shared, D).unwrap();
        assert!(v.addr == 0 || v.addr == 4);
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn invalidate_absent_line_is_none() {
        let mut c = small();
        assert!(c.invalidate(0x99).is_none());
    }

    #[test]
    fn resident_counts() {
        let mut c = small();
        for i in 0..8u64 {
            c.insert(i, LineState::Shared, D);
        }
        assert_eq!(c.resident(), 8); // fills all 4 sets x 2 ways
        assert_eq!(c.num_sets(), 4);
    }
}
