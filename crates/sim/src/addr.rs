//! Physical addresses, cache-line geometry and the PCLR shadow address
//! space (Section 5.1.5 of the paper).
//!
//! The advanced PCLR scheme identifies reduction accesses by *shadow
//! addresses*: the reduction code accesses a shadow array mapped to
//! physical addresses that do not contain installed memory but differ from
//! the corresponding real addresses "in a known manner" (the paper suggests
//! flipping the most significant bit).  A directory controller that sees an
//! access to nonexistent memory knows (a) it is a reduction access and (b)
//! which real location it aliases.

/// A physical byte address.
pub type Addr = u64;

/// A cache-line address (byte address >> line shift).
pub type LineAddr = u64;

/// Bit used to mark the shadow (reduction) address space.  Any address with
/// this bit set refers to nonexistent physical memory and is interpreted by
/// the directory controllers as a reduction access to the aliased real
/// address.
pub const SHADOW_BIT: u64 = 1 << 40;

/// Returns the shadow alias of a real address.
#[inline]
pub fn to_shadow(a: Addr) -> Addr {
    a | SHADOW_BIT
}

/// Strips the shadow bit, recovering the real address.
#[inline]
pub fn from_shadow(a: Addr) -> Addr {
    a & !SHADOW_BIT
}

/// True if the address lies in the shadow (reduction) space.
#[inline]
pub fn is_shadow(a: Addr) -> bool {
    a & SHADOW_BIT != 0
}

/// Line/page geometry helper derived from the machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct Geometry {
    line_shift: u32,
    page_shift: u32,
}

impl Geometry {
    /// Build a geometry from line and page sizes (both powers of two).
    pub fn new(line_size: usize, page_size: usize) -> Self {
        debug_assert!(line_size.is_power_of_two());
        debug_assert!(page_size.is_power_of_two());
        Geometry {
            line_shift: line_size.trailing_zeros(),
            page_shift: page_size.trailing_zeros(),
        }
    }

    /// The cache line containing `a`.
    #[inline]
    pub fn line_of(&self, a: Addr) -> LineAddr {
        a >> self.line_shift
    }

    /// First byte address of a line.
    #[inline]
    pub fn line_base(&self, l: LineAddr) -> Addr {
        l << self.line_shift
    }

    /// The page containing `a`.
    #[inline]
    pub fn page_of(&self, a: Addr) -> u64 {
        a >> self.page_shift
    }

    /// The page containing line `l`.
    #[inline]
    pub fn page_of_line(&self, l: LineAddr) -> u64 {
        self.line_base(l) >> self.page_shift
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_size(&self) -> usize {
        1 << self.line_shift
    }

    /// Byte offset of `a` within its line.
    #[inline]
    pub fn line_offset(&self, a: Addr) -> usize {
        (a & ((1 << self.line_shift) - 1)) as usize
    }

    /// Index of the 8-byte element of `a` within its line.
    #[inline]
    pub fn elem_in_line(&self, a: Addr) -> usize {
        self.line_offset(a) / 8
    }
}

/// Memory-map constants for trace generation.  Regions are far enough apart
/// that workloads of any realistic size never overlap.
pub mod regions {
    use super::Addr;

    /// Base of the shared reduction array.
    pub const SHARED_RED: Addr = 0x1000_0000;
    /// Base of per-processor private arrays; processor `p`'s region starts
    /// at `PRIVATE + p * PRIVATE_STRIDE`.
    pub const PRIVATE: Addr = 0x4000_0000;
    /// Separation between consecutive processors' private regions.
    pub const PRIVATE_STRIDE: Addr = 0x0400_0000;
    /// Base of read-only pattern/index data (interaction lists, meshes).
    pub const PATTERN: Addr = 0x9000_0000;
    /// Separation between processors' pattern-stream regions.
    pub const PATTERN_STRIDE: Addr = 0x0400_0000;
    /// Base of auxiliary per-iteration input data (coordinates, fields).
    pub const INPUT: Addr = 0xc000_0000;

    /// Address of element `i` (8-byte elements) of the shared array.
    #[inline]
    pub fn shared_elem(i: u64) -> Addr {
        SHARED_RED + i * 8
    }

    /// Address of element `i` of processor `p`'s private array.
    #[inline]
    pub fn private_elem(p: usize, i: u64) -> Addr {
        PRIVATE + p as Addr * PRIVATE_STRIDE + i * 8
    }

    /// Address in processor `p`'s streaming pattern region.
    #[inline]
    pub fn pattern_stream(p: usize, byte: u64) -> Addr {
        PATTERN + p as Addr * PATTERN_STRIDE + byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_roundtrip() {
        let a = 0x1234_5678;
        assert!(!is_shadow(a));
        let s = to_shadow(a);
        assert!(is_shadow(s));
        assert_eq!(from_shadow(s), a);
        // Idempotent.
        assert_eq!(to_shadow(s), s);
        assert_eq!(from_shadow(a), a);
    }

    #[test]
    fn shadow_space_is_disjoint_from_real_regions() {
        for a in [
            regions::SHARED_RED,
            regions::PRIVATE,
            regions::PATTERN,
            regions::INPUT,
        ] {
            assert!(!is_shadow(a));
            assert!(is_shadow(to_shadow(a)));
        }
    }

    #[test]
    fn geometry_line_and_page() {
        let g = Geometry::new(64, 4096);
        assert_eq!(g.line_of(0), 0);
        assert_eq!(g.line_of(63), 0);
        assert_eq!(g.line_of(64), 1);
        assert_eq!(g.line_base(1), 64);
        assert_eq!(g.page_of(4095), 0);
        assert_eq!(g.page_of(4096), 1);
        assert_eq!(g.page_of_line(g.line_of(4096)), 1);
        assert_eq!(g.line_size(), 64);
    }

    #[test]
    fn geometry_offsets() {
        let g = Geometry::new(64, 4096);
        assert_eq!(g.line_offset(0x40), 0);
        assert_eq!(g.line_offset(0x47), 7);
        assert_eq!(g.elem_in_line(0x40), 0);
        assert_eq!(g.elem_in_line(0x48), 1);
        assert_eq!(g.elem_in_line(0x78), 7);
    }

    #[test]
    fn shadow_line_maps_to_real_line() {
        let g = Geometry::new(64, 4096);
        let a = regions::shared_elem(1234);
        assert_eq!(g.line_of(from_shadow(to_shadow(a))), g.line_of(a));
    }

    #[test]
    fn private_regions_do_not_collide() {
        // 16 processors, 32 MiB arrays each: still disjoint.
        let top_p15 = regions::private_elem(15, (32 << 20) / 8 - 1);
        assert!(top_p15 < regions::PATTERN);
        for p in 0..15usize {
            let hi = regions::private_elem(p, regions::PRIVATE_STRIDE / 8 - 1);
            let lo_next = regions::private_elem(p + 1, 0);
            assert!(hi < lo_next);
        }
    }
}
