//! # smartapps-sim — execution-driven CC-NUMA simulator with PCLR
//!
//! This crate reimplements the simulation substrate of the SmartApps paper
//! (Dang et al., IPPS 2002, Sections 5–6): a CC-NUMA shared-memory
//! multiprocessor with up to 16 nodes, two-level write-back caches, a
//! DASH-like full-map directory protocol, and the **PCLR** (Private
//! Cache-Line Reduction) architectural extension for parallelizing
//! reduction operations.
//!
//! ## What PCLR does
//!
//! Each processor participating in a reduction uses *non-coherent* lines in
//! its cache as temporary private storage for partial results:
//!
//! * a reduction **miss** is satisfied *within the local node* by the
//!   directory controller returning a line filled with the operation's
//!   neutral element — no private array allocation, no initialization loop;
//! * a **displaced** reduction line is automatically combined into the
//!   shared reduction variable at its home node, in the background, by a
//!   combine unit attached to the home's directory controller;
//! * at loop end a **flush** drains the remaining partial results; its cost
//!   is at worst proportional to the cache size, not the array size.
//!
//! Both the **hardwired** controller (`Hw`) and the **programmable**
//! FLASH/MAGIC-style controller (`Flex`) of the paper's evaluation are
//! modeled, alongside the conventional software scheme (`Sw`: private
//! arrays with an initialization and a merge phase) which runs as an
//! ordinary coherent trace on the same machine.
//!
//! ## Example
//!
//! ```
//! use smartapps_sim::{
//!     config::MachineConfig,
//!     machine::Machine,
//!     redop::RedOp,
//!     trace::{Phase, TraceBuilder, TraceSource},
//! };
//!
//! // Two processors each add 1.0 into the same shared element via PCLR.
//! let elem = smartapps_sim::addr::regions::shared_elem(0);
//! let shadow = smartapps_sim::addr::to_shadow(elem);
//! let mk = |_p: usize| {
//!     Box::new(
//!         TraceBuilder::new()
//!             .config_pclr(RedOp::AddF64)
//!             .phase(Phase::Loop)
//!             .red_update(shadow, 1.0f64.to_bits())
//!             .phase(Phase::Merge)
//!             .flush()
//!             .barrier()
//!             .build(),
//!     ) as Box<dyn TraceSource>
//! };
//! let mut cfg = MachineConfig::table1(2);
//! cfg.track_values = true;
//! let mut m = Machine::new(cfg, vec![mk(0), mk(1)]);
//! m.poke_memory(elem, 0f64.to_bits());
//! let stats = m.run();
//! assert_eq!(f64::from_bits(m.peek_memory(elem)), 2.0);
//! assert!(stats.total_cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod cache;
pub mod config;
pub mod directory;
pub mod machine;
pub mod offload;
pub mod redop;
pub mod stats;
pub mod trace;

pub use config::{CacheConfig, ControllerKind, MachineConfig};
pub use machine::Machine;
pub use offload::{run_reduction, SimOutcome};
pub use redop::RedOp;
pub use stats::{harmonic_mean, Counters, PhaseBreakdown, RunStats};
pub use trace::{Inst, Phase, TraceBuilder, TraceSource, VecTrace};
