//! The reusable job→machine adapter: run a set of reduction traces on a
//! simulated machine and read the reduced array back out of simulated
//! memory.
//!
//! Higher layers (the `smartapps-runtime` PCLR backend, oracle tests,
//! examples) all need the same four steps — force value tracking, build
//! the [`Machine`], [`run`](Machine::run) it to completion, then
//! [`peek_memory`](Machine::peek_memory) the shared reduction array —
//! and this module packages them so none of them re-implements the
//! readback loop or forgets the `track_values` flag.
//!
//! The simulation is fully deterministic: the event queue breaks timing
//! ties by insertion sequence number, traces are generated from the
//! pattern alone, and no host-time or randomness enters the machine.
//! Running the same traces on the same configuration twice yields
//! bit-identical values *and* cycle counts — which is what lets oracle
//! tests pin exact results.

use crate::addr::regions;
use crate::config::MachineConfig;
use crate::machine::Machine;
use crate::stats::RunStats;
use crate::trace::TraceSource;

/// The outcome of one simulated reduction: the final shared array (raw
/// 8-byte bit patterns, one per element) and the full run statistics.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Element `i`'s final bit pattern, read from
    /// `regions::shared_elem(i)` after the run (combine the bits with
    /// `f64::from_bits` or an `as i64` cast, matching the trace's
    /// [`RedOp`](crate::redop::RedOp)).
    pub values: Vec<u64>,
    /// Cycle counts, phase breakdowns and protocol counters.
    pub stats: RunStats,
}

impl SimOutcome {
    /// Total simulated cycles of the run.
    pub fn cycles(&self) -> u64 {
        self.stats.total_cycles
    }
}

/// Run `traces` (one per node of `cfg`) to completion and read back the
/// first `num_elements` elements of the shared reduction array.
///
/// Value tracking is forced on — without it the simulated memory carries
/// no data and the readback would be all zeroes.  Panics propagate from
/// trace generation (lazy traces may run caller closures) and from
/// machine-configuration validation.
pub fn run_reduction(
    mut cfg: MachineConfig,
    traces: Vec<Box<dyn TraceSource>>,
    num_elements: usize,
) -> SimOutcome {
    cfg.track_values = true;
    let mut machine = Machine::new(cfg, traces);
    let stats = machine.run();
    let values = (0..num_elements as u64)
        .map(|e| machine.peek_memory(regions::shared_elem(e)))
        .collect();
    SimOutcome { values, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redop::RedOp;
    use crate::trace::{Phase, TraceBuilder, TraceSource};

    fn counter_traces(nodes: usize, elems: u64, per_proc: u64) -> Vec<Box<dyn TraceSource>> {
        (0..nodes)
            .map(|p| {
                let mut b = TraceBuilder::new()
                    .config_pclr(RedOp::AddI64)
                    .phase(Phase::Loop);
                for k in 0..per_proc {
                    let elem = (p as u64 * 17 + k) % elems;
                    b = b.red_update(crate::addr::to_shadow(regions::shared_elem(elem)), 1);
                }
                Box::new(b.phase(Phase::Merge).flush().barrier().build()) as Box<dyn TraceSource>
            })
            .collect()
    }

    #[test]
    fn readback_combines_all_updates() {
        let out = run_reduction(MachineConfig::table1(4), counter_traces(4, 64, 100), 64);
        let total: i64 = out.values.iter().map(|&v| v as i64).sum();
        assert_eq!(total, 400, "every update must land exactly once");
        assert!(out.cycles() > 0);
        assert!(out.stats.counters.red_fills > 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_reduction(MachineConfig::table1(4), counter_traces(4, 64, 100), 64);
        let b = run_reduction(MachineConfig::table1(4), counter_traces(4, 64, 100), 64);
        assert_eq!(a.values, b.values);
        assert_eq!(a.cycles(), b.cycles(), "cycle counts must be reproducible");
    }

    #[test]
    fn value_tracking_is_forced() {
        let mut cfg = MachineConfig::table1(2);
        cfg.track_values = false; // adapter must override
        let out = run_reduction(cfg, counter_traces(2, 8, 8), 8);
        let total: i64 = out.values.iter().map(|&v| v as i64).sum();
        assert_eq!(total, 16);
    }
}
