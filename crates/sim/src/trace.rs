//! Abstract instruction traces driving the simulated processors.
//!
//! The original evaluation used MINT-based execution-driven simulation: the
//! real application binary ran and its memory references drove the timing
//! model.  We drive the same timing model with *abstract instruction
//! streams*: sequences of compute bundles, loads, stores and reduction
//! accesses generated from workload access patterns
//! (`smartapps-workloads::tracegen`).  Because the Sw/Hw/Flex comparison is
//! determined by the memory reference stream and not by the identity of the
//! arithmetic, this preserves the experiment.

use crate::addr::Addr;
use crate::redop::RedOp;

/// Execution phases, matching the bar-chart breakdown of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Phase {
    /// Before any phase mark.
    #[default]
    Startup,
    /// Initialization of private arrays (software schemes only).
    Init,
    /// The parallel reduction loop body.
    Loop,
    /// Merging partial results (software) — or flushing caches (PCLR).
    Merge,
    /// Anything after the reduction (checks, teardown).
    Epilogue,
}

use serde::{Deserialize, Serialize};

/// One abstract instruction.
///
/// `Work` bundles adjacent non-memory instructions so the hot simulation
/// path does not pay per-instruction overhead for arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are described in the variant docs
pub enum Inst {
    /// A bundle of non-memory instructions: `ints` integer ops, `fps`
    /// floating-point ops, `branches` (mispredicted fraction is charged by
    /// the processor model).
    Work { ints: u32, fps: u32, branches: u32 },
    /// A plain (coherent) load.
    Load { addr: Addr },
    /// A plain (coherent) store.  `val` is the stored bit pattern when
    /// value tracking is enabled (ignored otherwise).
    Store { addr: Addr, val: u64 },
    /// A reduction load: marked with the special "reduction" semantics of
    /// Section 5.1.1 (or, equivalently, addressed to the shadow space).
    RedLoad { addr: Addr },
    /// A reduction update: accumulates `val` into the reduction line using
    /// the configured operator.  Models the `load&pin`/`store&unpin` pair
    /// around the add; charged as one load, one FP op and one store.
    RedUpdate { addr: Addr, val: u64 },
    /// Configure the node's directory controller for a reduction operation
    /// (the `ConfigHardware()` system call in Figure 5).
    ConfigPclr { op: RedOp },
    /// Flush all reduction lines from this processor's caches, waiting for
    /// the home controllers to acknowledge the combines (end of Figure 5's
    /// loop: `CacheFlush()`).
    Flush,
    /// Global barrier; all processors must arrive before any proceeds.
    Barrier,
    /// Phase boundary marker for statistics.
    SetPhase(Phase),
}

/// A source of instructions for one processor.  Streams are pulled lazily
/// so multi-million-instruction loops need no materialized trace.
pub trait TraceSource: Send {
    /// Produce the next instruction, or `None` when the processor is done.
    fn next_inst(&mut self) -> Option<Inst>;
}

/// A trace source backed by a pre-built vector (tests, small kernels).
#[derive(Debug, Clone, Default)]
pub struct VecTrace {
    insts: Vec<Inst>,
    pos: usize,
}

impl VecTrace {
    /// Wrap a vector of instructions.
    pub fn new(insts: Vec<Inst>) -> Self {
        VecTrace { insts, pos: 0 }
    }

    /// Number of instructions remaining.
    pub fn remaining(&self) -> usize {
        self.insts.len() - self.pos
    }
}

impl TraceSource for VecTrace {
    fn next_inst(&mut self) -> Option<Inst> {
        let i = self.insts.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }
}

/// An empty trace (processor immediately done); useful for idle nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyTrace;

impl TraceSource for EmptyTrace {
    fn next_inst(&mut self) -> Option<Inst> {
        None
    }
}

/// A trace source produced by a generator closure, for procedurally
/// generated streams without allocation of the whole trace.
pub struct FnTrace<F: FnMut() -> Option<Inst> + Send>(pub F);

impl<F: FnMut() -> Option<Inst> + Send> TraceSource for FnTrace<F> {
    fn next_inst(&mut self) -> Option<Inst> {
        (self.0)()
    }
}

/// Convenience builder for hand-written traces in tests and examples.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    insts: Vec<Inst>,
}

impl TraceBuilder {
    /// Start an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a compute bundle.
    pub fn work(mut self, ints: u32, fps: u32) -> Self {
        self.insts.push(Inst::Work {
            ints,
            fps,
            branches: 0,
        });
        self
    }

    /// Append a plain load.
    pub fn load(mut self, addr: Addr) -> Self {
        self.insts.push(Inst::Load { addr });
        self
    }

    /// Append a plain store.
    pub fn store(mut self, addr: Addr, val: u64) -> Self {
        self.insts.push(Inst::Store { addr, val });
        self
    }

    /// Append a reduction update.
    pub fn red_update(mut self, addr: Addr, val: u64) -> Self {
        self.insts.push(Inst::RedUpdate { addr, val });
        self
    }

    /// Append a PCLR configuration call.
    pub fn config_pclr(mut self, op: RedOp) -> Self {
        self.insts.push(Inst::ConfigPclr { op });
        self
    }

    /// Append a cache flush of reduction lines.
    pub fn flush(mut self) -> Self {
        self.insts.push(Inst::Flush);
        self
    }

    /// Append a barrier.
    pub fn barrier(mut self) -> Self {
        self.insts.push(Inst::Barrier);
        self
    }

    /// Append a phase marker.
    pub fn phase(mut self, p: Phase) -> Self {
        self.insts.push(Inst::SetPhase(p));
        self
    }

    /// Finish building.
    pub fn build(self) -> VecTrace {
        VecTrace::new(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_yields_in_order_then_none() {
        let mut t = TraceBuilder::new()
            .work(3, 1)
            .load(0x100)
            .store(0x108, 7)
            .barrier()
            .build();
        assert_eq!(t.remaining(), 4);
        assert!(matches!(
            t.next_inst(),
            Some(Inst::Work {
                ints: 3,
                fps: 1,
                ..
            })
        ));
        assert!(matches!(t.next_inst(), Some(Inst::Load { addr: 0x100 })));
        assert!(matches!(
            t.next_inst(),
            Some(Inst::Store {
                addr: 0x108,
                val: 7
            })
        ));
        assert!(matches!(t.next_inst(), Some(Inst::Barrier)));
        assert_eq!(t.next_inst(), None);
        assert_eq!(t.next_inst(), None);
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let mut t = EmptyTrace;
        assert_eq!(t.next_inst(), None);
    }

    #[test]
    fn fn_trace_generates() {
        let mut n = 0u32;
        let mut t = FnTrace(move || {
            n += 1;
            if n <= 2 {
                Some(Inst::Work {
                    ints: n,
                    fps: 0,
                    branches: 0,
                })
            } else {
                None
            }
        });
        assert!(matches!(t.next_inst(), Some(Inst::Work { ints: 1, .. })));
        assert!(matches!(t.next_inst(), Some(Inst::Work { ints: 2, .. })));
        assert_eq!(t.next_inst(), None);
    }

    #[test]
    fn phase_default_is_startup() {
        assert_eq!(Phase::default(), Phase::Startup);
    }
}
