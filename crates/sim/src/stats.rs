//! Simulation statistics: per-phase cycle accounting (Figure 6's
//! Init/Loop/Merge breakdown) and the event counters behind Table 2's
//! "Lines Flushed" / "Lines Displaced" columns.

use crate::trace::Phase;
use serde::{Deserialize, Serialize};

/// Counters accumulated machine-wide during a run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counters {
    /// L1 data cache hits.
    pub l1_hits: u64,
    /// L1 misses that hit in L2.
    pub l2_hits: u64,
    /// Misses that left the node (or reached local memory).
    pub mem_accesses: u64,
    /// Requests satisfied by local memory (requester == home).
    pub local_misses: u64,
    /// Requests satisfied by a remote home.
    pub remote_misses: u64,
    /// Reduction fills: reduction misses satisfied with neutral lines by
    /// the local directory controller.
    pub red_fills: u64,
    /// Reduction lines displaced from L2 during loop execution and combined
    /// at their home in the background (Table 2 "Lines Displaced").
    pub red_displaced: u64,
    /// Reduction lines written back by the end-of-loop flush
    /// (Table 2 "Lines Flushed").
    pub red_flushed: u64,
    /// Individual element combines performed by home combine units.
    pub combines: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Dirty-line recalls.
    pub recalls: u64,
    /// Plain write-backs of modified lines.
    pub writebacks: u64,
    /// Instructions retired (all classes, unbundled).
    pub instructions: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
}

/// Per-processor phase time accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    records: Vec<(Phase, u64, u64)>, // phase, start, end
    current: Option<(Phase, u64)>,
}

impl PhaseTimes {
    /// Enter a phase at `cycle`, closing the previous one.
    pub fn enter(&mut self, phase: Phase, cycle: u64) {
        if let Some((p, start)) = self.current.take() {
            self.records.push((p, start, cycle));
        }
        self.current = Some((phase, cycle));
    }

    /// Close the open phase at the final cycle.
    pub fn finish(&mut self, cycle: u64) {
        if let Some((p, start)) = self.current.take() {
            self.records.push((p, start, cycle));
        }
    }

    /// Total cycles spent in `phase`.
    pub fn time_in(&self, phase: Phase) -> u64 {
        self.records
            .iter()
            .filter(|(p, _, _)| *p == phase)
            .map(|(_, s, e)| e - s)
            .sum()
    }

    /// All recorded (phase, start, end) intervals.
    pub fn records(&self) -> &[(Phase, u64, u64)] {
        &self.records
    }
}

/// The complete result of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Machine-wide event counters.
    pub counters: Counters,
    /// Per-processor phase times.
    pub proc_phases: Vec<PhaseTimes>,
    /// Final cycle of each processor.
    pub proc_cycles: Vec<u64>,
    /// Global completion time (max over processors).
    pub total_cycles: u64,
}

impl RunStats {
    /// Wall-clock cycles attributed to a phase: the maximum over processors
    /// of the time each spent in the phase.  Phases are barrier-delimited in
    /// the generated traces, so this equals the phase's wall time.
    pub fn phase_time(&self, phase: Phase) -> u64 {
        self.proc_phases
            .iter()
            .map(|p| p.time_in(phase))
            .max()
            .unwrap_or(0)
    }

    /// Breakdown over the three Figure 6 phases, in cycles.
    pub fn breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            init: self.phase_time(Phase::Init),
            looptime: self.phase_time(Phase::Loop),
            merge: self.phase_time(Phase::Merge),
        }
    }
}

/// The Init/Loop/Merge split of Figure 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Private-array initialization (software schemes; zero for PCLR).
    pub init: u64,
    /// Parallel loop body.
    pub looptime: u64,
    /// Merge (software) or flush (PCLR).
    pub merge: u64,
}

impl PhaseBreakdown {
    /// Sum of the three phases.
    pub fn total(&self) -> u64 {
        self.init + self.looptime + self.merge
    }

    /// Each phase as a fraction of another breakdown's total (Figure 6
    /// normalizes all bars to the software scheme).
    pub fn normalized_to(&self, base: &PhaseBreakdown) -> (f64, f64, f64) {
        let t = base.total().max(1) as f64;
        (
            self.init as f64 / t,
            self.looptime as f64 / t,
            self.merge as f64 / t,
        )
    }
}

/// Harmonic mean, the average the paper uses for cross-application
/// speedups ("since there is a significant variation in speedup figures
/// across applications, we report average results using the harmonic
/// mean").
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "harmonic mean of empty slice");
    let s: f64 = xs
        .iter()
        .map(|x| {
            assert!(*x > 0.0, "harmonic mean requires positive values");
            1.0 / x
        })
        .sum();
    xs.len() as f64 / s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_times_accumulate() {
        let mut pt = PhaseTimes::default();
        pt.enter(Phase::Init, 0);
        pt.enter(Phase::Loop, 100);
        pt.enter(Phase::Merge, 350);
        pt.finish(400);
        assert_eq!(pt.time_in(Phase::Init), 100);
        assert_eq!(pt.time_in(Phase::Loop), 250);
        assert_eq!(pt.time_in(Phase::Merge), 50);
        assert_eq!(pt.time_in(Phase::Epilogue), 0);
        assert_eq!(pt.records().len(), 3);
    }

    #[test]
    fn repeated_phases_sum() {
        let mut pt = PhaseTimes::default();
        pt.enter(Phase::Loop, 0);
        pt.enter(Phase::Merge, 10);
        pt.enter(Phase::Loop, 30);
        pt.finish(70);
        assert_eq!(pt.time_in(Phase::Loop), 10 + 40);
        assert_eq!(pt.time_in(Phase::Merge), 20);
    }

    #[test]
    fn run_stats_phase_time_is_max_over_procs() {
        let mut a = PhaseTimes::default();
        a.enter(Phase::Loop, 0);
        a.finish(100);
        let mut b = PhaseTimes::default();
        b.enter(Phase::Loop, 0);
        b.finish(130);
        let rs = RunStats {
            proc_phases: vec![a, b],
            proc_cycles: vec![100, 130],
            total_cycles: 130,
            ..Default::default()
        };
        assert_eq!(rs.phase_time(Phase::Loop), 130);
        let bd = rs.breakdown();
        assert_eq!(bd.looptime, 130);
        assert_eq!(bd.init, 0);
    }

    #[test]
    fn breakdown_normalization() {
        let sw = PhaseBreakdown {
            init: 100,
            looptime: 300,
            merge: 100,
        };
        let hw = PhaseBreakdown {
            init: 0,
            looptime: 250,
            merge: 50,
        };
        let (i, l, m) = hw.normalized_to(&sw);
        assert!((i - 0.0).abs() < 1e-12);
        assert!((l - 0.5).abs() < 1e-12);
        assert!((m - 0.1).abs() < 1e-12);
        assert_eq!(sw.total(), 500);
    }

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        let hm = harmonic_mean(&[1.0, 2.0, 4.0]);
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
        // Harmonic mean is dominated by the smallest value.
        assert!(hm < (1.0 + 2.0 + 4.0) / 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }
}
