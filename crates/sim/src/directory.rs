//! Full-map directory state, page-level first-touch placement and the
//! simulated memory data store.
//!
//! The protocol follows the DASH outline the paper cites: each line's home
//! keeps a full-map sharing vector or a dirty-owner pointer.  Reduction
//! lines are *not* tracked by the directory ("misses due to the reduction
//! accesses do not go to the home ... the home only has sharing information
//! about non-reduction sharers", Section 5.1.3).

use crate::addr::{Addr, LineAddr};
use std::collections::HashMap;

/// Directory entry for one memory line at its home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirState {
    /// No cache holds the line (memory is the owner).
    #[default]
    Uncached,
    /// Read-only copies in the caches of the set bits.
    Shared(u64),
    /// Exactly one cache holds the line modified.
    Dirty(u8),
}

impl DirState {
    /// Add a sharer to the state (must not be Dirty).
    pub fn add_sharer(&mut self, node: usize) {
        *self = match *self {
            DirState::Uncached => DirState::Shared(1 << node),
            DirState::Shared(m) => DirState::Shared(m | (1 << node)),
            DirState::Dirty(_) => panic!("add_sharer on dirty line"),
        };
    }

    /// Iterate over sharer node ids.
    pub fn sharers(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = match self {
            DirState::Shared(m) => *m,
            _ => 0,
        };
        (0..64).filter(move |i| mask & (1 << i) != 0)
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        match self {
            DirState::Shared(m) => m.count_ones(),
            _ => 0,
        }
    }
}

/// Directory storage for one node (its slice of the global directory).
#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<LineAddr, DirState>,
}

impl Directory {
    /// Current state of a line (Uncached if never seen).
    pub fn state(&self, l: LineAddr) -> DirState {
        self.entries.get(&l).copied().unwrap_or_default()
    }

    /// Replace the state of a line.
    pub fn set_state(&mut self, l: LineAddr, st: DirState) {
        if st == DirState::Uncached {
            self.entries.remove(&l);
        } else {
            self.entries.insert(l, st);
        }
    }

    /// Number of tracked (non-Uncached) lines.
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }
}

/// Page-granularity home assignment with first-touch placement ("pages of
/// shared data are allocated in the memory module of the first processor
/// that accesses them"; private data is allocated locally, which first
/// touch also produces).
#[derive(Debug)]
pub struct PageTable {
    homes: HashMap<u64, u8>,
    policy: PlacementPolicy,
    nodes: u8,
}

/// Shared-page placement policies (first-touch is the paper's choice; the
/// ablation harness compares round-robin striping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Assign a page to the node that first touches it.
    FirstTouch,
    /// Stripe pages across nodes by page number (order-independent
    /// round-robin, the conventional alternative policy).
    RoundRobin,
}

impl PageTable {
    /// Create a page table for `nodes` nodes.
    pub fn new(nodes: usize, policy: PlacementPolicy) -> Self {
        PageTable {
            homes: HashMap::new(),
            policy,
            nodes: nodes as u8,
        }
    }

    /// Home node of `page`, assigning it on first touch by `toucher`.
    pub fn home_of(&mut self, page: u64, toucher: usize) -> usize {
        if let Some(&h) = self.homes.get(&page) {
            return h as usize;
        }
        let h = match self.policy {
            PlacementPolicy::FirstTouch => toucher as u8,
            PlacementPolicy::RoundRobin => (page % self.nodes as u64) as u8,
        };
        self.homes.insert(page, h);
        h as usize
    }

    /// Home of `page` if already assigned.
    pub fn peek(&self, page: u64) -> Option<usize> {
        self.homes.get(&page).map(|&h| h as usize)
    }

    /// Number of assigned pages.
    pub fn assigned(&self) -> usize {
        self.homes.len()
    }
}

/// The simulated physical memory contents (line granularity).  Only
/// consulted when value tracking is on; lines absent from the map hold the
/// `default_fill` pattern (zeroes for data, the neutral element is *not*
/// assumed — reduction arrays are explicitly initialized by `poke`).
#[derive(Debug, Default)]
pub struct MemoryData {
    lines: HashMap<LineAddr, [u64; 8]>,
}

impl MemoryData {
    /// Read a line (zero-filled if never written).
    pub fn read_line(&self, l: LineAddr) -> [u64; 8] {
        self.lines.get(&l).copied().unwrap_or([0; 8])
    }

    /// Overwrite a line.
    pub fn write_line(&mut self, l: LineAddr, data: [u64; 8]) {
        self.lines.insert(l, data);
    }

    /// Write one 8-byte element.
    pub fn poke(&mut self, addr: Addr, line: LineAddr, elem: usize, val: u64) {
        debug_assert_eq!(addr % 8, 0, "element addresses must be 8-byte aligned");
        let entry = self.lines.entry(line).or_insert([0; 8]);
        entry[elem] = val;
    }

    /// Read one 8-byte element.
    pub fn peek(&self, line: LineAddr, elem: usize) -> u64 {
        self.read_line(line)[elem]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_state_sharers() {
        let mut s = DirState::Uncached;
        s.add_sharer(3);
        s.add_sharer(7);
        assert_eq!(s.sharer_count(), 2);
        let v: Vec<usize> = s.sharers().collect();
        assert_eq!(v, vec![3, 7]);
        assert_eq!(DirState::Dirty(2).sharer_count(), 0);
    }

    #[test]
    #[should_panic(expected = "dirty")]
    fn add_sharer_to_dirty_panics() {
        let mut s = DirState::Dirty(0);
        s.add_sharer(1);
    }

    #[test]
    fn directory_defaults_to_uncached_and_prunes() {
        let mut d = Directory::default();
        assert_eq!(d.state(0x99), DirState::Uncached);
        d.set_state(0x99, DirState::Dirty(4));
        assert_eq!(d.state(0x99), DirState::Dirty(4));
        assert_eq!(d.tracked(), 1);
        d.set_state(0x99, DirState::Uncached);
        assert_eq!(d.tracked(), 0);
    }

    #[test]
    fn first_touch_assigns_to_toucher_and_sticks() {
        let mut pt = PageTable::new(4, PlacementPolicy::FirstTouch);
        assert_eq!(pt.home_of(10, 2), 2);
        assert_eq!(pt.home_of(10, 3), 2); // sticky
        assert_eq!(pt.peek(10), Some(2));
        assert_eq!(pt.peek(11), None);
        assert_eq!(pt.assigned(), 1);
    }

    #[test]
    fn round_robin_stripes_by_page_number() {
        let mut pt = PageTable::new(4, PlacementPolicy::RoundRobin);
        assert_eq!(pt.home_of(0, 3), 0);
        assert_eq!(pt.home_of(1, 3), 1);
        assert_eq!(pt.home_of(2, 3), 2);
        assert_eq!(pt.home_of(3, 3), 3);
        assert_eq!(pt.home_of(4, 3), 0);
        // Order-independent: touching pages out of order changes nothing.
        let mut pt2 = PageTable::new(4, PlacementPolicy::RoundRobin);
        assert_eq!(pt2.home_of(5, 1), 1);
        assert_eq!(pt2.home_of(0, 1), 0);
    }

    #[test]
    fn memory_data_poke_peek() {
        let mut m = MemoryData::default();
        assert_eq!(m.peek(5, 3), 0);
        m.poke(5 * 64 + 24, 5, 3, 0xdead);
        assert_eq!(m.peek(5, 3), 0xdead);
        let line = m.read_line(5);
        assert_eq!(line[3], 0xdead);
        assert_eq!(line[0], 0);
        m.write_line(5, [7; 8]);
        assert_eq!(m.peek(5, 0), 7);
    }
}
