//! Property tests for the log2 histogram: quantiles stay within one
//! bucket of an exact sorted-vector oracle for arbitrary sample sets,
//! and merging snapshots is indistinguishable from recording the union
//! into one histogram.  These are the bounds the `stats v2` digests and
//! the Prometheus exposition lean on.

use proptest::prelude::*;
use smartapps_telemetry::{bucket_of, HistogramSnapshot, LogHistogram};

/// Strategy: sample sets spanning the magnitudes latency recording
/// produces — sub-microsecond counts through multi-second outliers —
/// including empty sets and heavy duplicates.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,
            100u64..100_000,
            1_000_000u64..10_000_000_000,
            Just(0u64),
            Just(u64::MAX),
        ],
        0..300,
    )
}

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let h = LogHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// The exact nearest-rank quantile the histogram approximates.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantile_is_within_one_bucket_of_the_oracle(
        samples in arb_samples(),
        q_pct in 0u32..=100,
    ) {
        let snap = record_all(&samples);
        let q = q_pct as f64 / 100.0;
        if samples.is_empty() {
            prop_assert_eq!(snap.quantile(q), 0);
            return Ok(());
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = oracle_quantile(&sorted, q);
        let reported = snap.quantile(q);
        // Never an understatement, and never more than the containing
        // bucket's bound — i.e. within one log2 bucket of the truth.
        prop_assert!(reported >= exact, "reported {} < exact {}", reported, exact);
        let db = bucket_of(reported) as i64 - bucket_of(exact) as i64;
        prop_assert!(
            (0..=1).contains(&db),
            "reported {} ({} buckets past exact {})", reported, db, exact
        );
        prop_assert!(reported <= snap.max);
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in arb_samples(),
        b in arb_samples(),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        let direct = record_all(&union);
        // Sum wraps identically on both sides (u64::MAX samples), so
        // full struct equality holds, not just bucket equality.
        prop_assert_eq!(merged, direct);
    }

    #[test]
    fn count_sum_max_and_buckets_are_exact(samples in arb_samples()) {
        let snap = record_all(&samples);
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(
            snap.sum,
            samples.iter().fold(0u64, |s, &v| s.wrapping_add(v))
        );
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        for &v in &samples {
            prop_assert!(snap.buckets[bucket_of(v)] > 0);
        }
    }
}
