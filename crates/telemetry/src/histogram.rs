//! Lock-free log2-bucketed histograms.
//!
//! A [`LogHistogram`] spreads `u64` samples (nanoseconds, cycles, bytes —
//! any non-negative magnitude) over 64 power-of-two buckets: bucket 0
//! holds `0..2`, bucket `i ≥ 1` holds `2^i .. 2^(i+1)`.  Recording is a
//! handful of relaxed atomic adds — no locks, no allocation — so the
//! dispatcher and reactor hot paths can record every single job without
//! measurable overhead, and any thread can snapshot concurrently.
//!
//! The price of log2 buckets is resolution: a reported
//! [`quantile`](HistogramSnapshot::quantile) is the *upper bound* of the
//! bucket the true rank falls in, so it can overstate the true value by
//! at most one power of two (tested: the property tests bound the error
//! to one bucket against a sorted-vector oracle).  For latency
//! distributions spanning nanoseconds to seconds, that is exactly the
//! resolution a "did p99 move?" question needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets — enough for any `u64` magnitude.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for `0..2`, else `floor(log2(v))`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`1, 3, 7, …, u64::MAX`) — the
/// value [`HistogramSnapshot::quantile`] reports for ranks in the bucket
/// and the `le` bound the Prometheus exposition advertises.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// A lock-free histogram over log2 buckets.
///
/// [`record`](LogHistogram::record) is wait-free (three relaxed
/// `fetch_add`s and a `fetch_max`); [`snapshot`](LogHistogram::snapshot)
/// reads concurrently without stopping writers.  A snapshot taken during
/// recording is a *consistent-enough* view: each counter is atomically
/// read, so totals can trail in-flight records by a few samples but
/// never tear.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`LogHistogram`]'s state: mergeable, queryable,
/// cheap to pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` holds `2^i .. 2^(i+1)`,
    /// bucket 0 also holds `0` and `1`).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Wrapping sum of all samples (for [`mean`](Self::mean)).
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge another snapshot in: the result equals a snapshot of one
    /// histogram that recorded both sample sets (the union property the
    /// proptests pin down) — this is what lets per-connection or
    /// per-shard histograms aggregate into a service-wide view.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) by nearest rank,
    /// reported as the containing bucket's upper bound — within one log2
    /// bucket of the true order statistic.  `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum > target {
                // The max is exact and always at least as tight as the
                // top occupied bucket's bound.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of all samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Index of the highest occupied bucket, if any — the render cutoff
    /// for expositions that skip trailing empty buckets.
    pub fn last_occupied_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&n| n > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(62), (1u64 << 63) - 1);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value sits at or below its bucket's bound and above the
        // previous bucket's.
        for v in [0u64, 1, 2, 3, 5, 1023, 1024, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper_bound(b), "{v}");
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1), "{v}");
            }
        }
    }

    #[test]
    fn quantiles_and_mean_of_a_known_distribution() {
        let h = LogHistogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1015);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 203.0).abs() < 1e-9);
        // Median rank 2 → value 4, bucket 2 → bound 7.
        assert_eq!(s.quantile(0.5), 7);
        // p100 is the exact max, not bucket 9's bound (1023).
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
        assert_eq!(s.last_occupied_bucket(), None);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(LogHistogram::new());
        let threads = 8;
        let per = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per {
                        h.record(t * per + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        assert_eq!(s.buckets.iter().sum::<u64>(), threads * per);
        assert_eq!(s.max, threads * per - 1);
    }
}
