//! # smartapps-telemetry — the service's self-measurement substrate
//!
//! The paper's premise is a runtime that *measures itself* and adapts;
//! until now the workspace only counted (17 monotonic counters in
//! `smartapps-runtime`'s `stats`).  This crate adds the distribution
//! layer those counters cannot express — where the p99 lives, which
//! scheme's tail moved, what happened to the last few thousand jobs
//! individually — without ever taking a lock on a hot path.
//!
//! Four modules, all std-only:
//!
//! * [`histogram`] — [`LogHistogram`]: 64 power-of-two buckets, wait-free
//!   `record`, mergeable [`HistogramSnapshot`]s with
//!   `quantile`/`mean`/`max` whose error is bounded by one log2 bucket
//!   (property-tested against a sorted-vector oracle).
//! * [`registry`] — [`Registry`]: histograms and counters keyed by
//!   static metric name × one dynamic label (scheme, domain class,
//!   connection id), rendered as Prometheus-style text exposition or as
//!   the compact [`HistSummary`] digests the `stats v2` wire response
//!   carries.  `docs/OBSERVABILITY.md` is the metric catalog.
//! * [`trace`] — [`TraceRing`]: a fixed-capacity seqlock ring (safe Rust,
//!   atomic words only) of per-job [`TraceEvent`]s carrying the full
//!   submitted→queued→decided→executed→completed timestamp chain, the
//!   simplify-probe duration, and the routing tags.
//! * [`exemplar`] — [`ExemplarStore`]: bounded slowest-N-per-class
//!   retention of arbitrary payloads (the runtime keeps each slow job's
//!   decision record and stage breakdown), evicting by per-class latency
//!   floor; fast jobs are rejected without a lock or payload allocation.
//!
//! `smartapps-runtime` owns a `RuntimeTelemetry` bundle of these and
//! records at every lifecycle edge; `smartapps-server` adds
//! per-connection series and serves both exposition surfaces over the
//! wire.
//!
//! ## Example
//!
//! ```
//! use smartapps_telemetry::Registry;
//!
//! let reg = Registry::new();
//! let exec = reg.histogram("exec_ns", "scheme", "hash");
//! for v in [120, 450, 90_000] {
//!     exec.record(v);
//! }
//! let s = exec.snapshot();
//! assert_eq!(s.count, 3);
//! assert!(s.quantile(0.5) >= 450);
//! assert!(reg.render_prometheus().contains("exec_ns_count{scheme=\"hash\"} 3"));
//! ```

#![warn(missing_docs)]

pub mod exemplar;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use exemplar::{Exemplar, ExemplarStore};
pub use histogram::{bucket_of, bucket_upper_bound, HistogramSnapshot, LogHistogram, BUCKETS};
pub use registry::{HistSummary, Registry};
pub use trace::{TraceBackend, TraceError, TraceEvent, TraceRing};
