//! A fixed-capacity lock-free ring of job-lifecycle trace events.
//!
//! The [`TraceRing`] keeps the last N [`TraceEvent`]s — one per job,
//! recording every lifecycle timestamp from submission to completion
//! plus the decision tags (scheme, backend, fused, error kind).  Where
//! the histograms answer *"what does the distribution look like?"*, the
//! ring answers *"what happened to the last few thousand jobs,
//! individually?"* — the thing you want when a p99 spike needs a culprit.
//!
//! ## Design: a seqlock ring in safe Rust
//!
//! Writers claim a slot by ticket (`head.fetch_add(1)`), flip the slot's
//! sequence word from the even value they observed to the odd value
//! `2·ticket + 1` via CAS, store the event's words with relaxed atomics,
//! then publish the unique even sequence `(ticket + 1) * 2` with
//! `Release`.  Every sequence value is unique to its ticket forever, so
//! readers load it with `Acquire`, copy the words, and re-check: a
//! concurrent writer leaves it odd or changed — torn events are detected
//! and skipped, never returned, and ABA cannot occur.  If the claim loses (a writer stalled a whole lap
//! while another laps it), the event is **dropped and counted** rather
//! than spun for — recording stays lock-free and the `dropped` counter
//! makes the loss visible.  Slots hold plain `AtomicU64` words, so there
//! is no `unsafe` anywhere.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `u64` words a [`TraceEvent`] packs into.
const EVENT_WORDS: usize = 8;

/// Which execution backend ran a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceBackend {
    /// Host software execution (wall-clock timed).
    Software,
    /// Simulated PCLR hardware execution.
    Pclr,
    /// Rewritten by the simplification pass and executed as a
    /// difference-array scan instead of a scheme sweep.
    Scan,
    /// SIMD tree-reduction backend execution.
    Simd,
}

impl TraceBackend {
    /// The stable wire/dump label (`software` / `pclr` / `scan` /
    /// `simd`).
    pub fn label(self) -> &'static str {
        match self {
            TraceBackend::Software => "software",
            TraceBackend::Pclr => "pclr",
            TraceBackend::Scan => "scan",
            TraceBackend::Simd => "simd",
        }
    }

    /// Inverse of [`TraceBackend::label`].
    pub fn from_label(s: &str) -> Option<TraceBackend> {
        Some(match s {
            "software" => TraceBackend::Software,
            "pclr" => TraceBackend::Pclr,
            "scan" => TraceBackend::Scan,
            "simd" => TraceBackend::Simd,
            _ => return None,
        })
    }
}

/// Why a job failed, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// Completed normally.
    None,
    /// The job's kernel panicked.
    Panicked,
    /// Rejected up front: its domain class was quarantined.
    Quarantined,
}

impl TraceError {
    /// The stable wire/dump label (`none` / `panicked` /
    /// `quarantined`).
    pub fn label(self) -> &'static str {
        match self {
            TraceError::None => "none",
            TraceError::Panicked => "panicked",
            TraceError::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`TraceError::label`].
    pub fn from_label(s: &str) -> Option<TraceError> {
        Some(match s {
            "none" => TraceError::None,
            "panicked" => TraceError::Panicked,
            "quarantined" => TraceError::Quarantined,
            _ => return None,
        })
    }
}

/// One job's lifecycle, timestamps in nanoseconds since the ring's
/// epoch (the owning runtime's start instant).
///
/// A timestamp of `0` means "not reached" for the optional stages; the
/// tags say how the job was routed and how it ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The job's domain signature.
    pub signature: u64,
    /// When the job entered the submission path.
    pub submitted_ns: u64,
    /// When a dispatcher dequeued it.
    pub queued_ns: u64,
    /// When scheme selection finished.
    pub decided_ns: u64,
    /// When backend execution finished.
    pub executed_ns: u64,
    /// When the completion was handed to the sink.
    pub completed_ns: u64,
    /// Chosen parallelization scheme, as a small code (the runtime's
    /// scheme enum discriminant); `u8::MAX` when none was chosen.
    pub scheme: u8,
    /// Which backend executed it.
    pub backend: TraceBackend,
    /// How it ended.
    pub error: TraceError,
    /// Number of jobs fused into the same backend invocation (1 when
    /// the job ran alone).
    pub fused: u16,
    /// Nanoseconds the dispatcher spent probing the simplification pass
    /// for this job's group (0 when no probe ran).  A *duration*, not a
    /// timestamp: the probe happens inside the decided→executed span,
    /// so [`TraceEvent::stage_exec`] subtracts it back out.
    pub simplify_ns: u64,
}

impl TraceEvent {
    /// Queue-wait stage: submission to dispatcher dequeue.
    pub fn stage_queue(&self) -> u64 {
        self.queued_ns.saturating_sub(self.submitted_ns)
    }

    /// Decide stage: dequeue to scheme selection finishing.
    pub fn stage_decide(&self) -> u64 {
        self.decided_ns.saturating_sub(self.queued_ns)
    }

    /// Simplify-probe stage: time spent asking the simplification pass
    /// whether the group lowers to a scan (a duration carved out of the
    /// decided→executed span).
    pub fn stage_simplify(&self) -> u64 {
        self.simplify_ns
    }

    /// Exec stage: decision to backend execution finishing, minus the
    /// simplify-probe time (which [`TraceEvent::stage_simplify`] reports
    /// separately).
    pub fn stage_exec(&self) -> u64 {
        self.executed_ns
            .saturating_sub(self.decided_ns)
            .saturating_sub(self.simplify_ns)
    }

    /// Completion stage: execution finishing to the completion reaching
    /// the sink (the server's write path extends this with its own
    /// `write` series).
    pub fn stage_completion(&self) -> u64 {
        self.completed_ns.saturating_sub(self.executed_ns)
    }

    /// End-to-end latency: submission to completion.
    pub fn end_to_end(&self) -> u64 {
        self.completed_ns.saturating_sub(self.submitted_ns)
    }

    /// Serialize the event as one line of the trace-dump format: eleven
    /// space-separated fields — hex signature, the five timestamps, the
    /// scheme code, the backend and error labels, the fused count, and
    /// the simplify-probe duration.  `trace_attr` replays files of these
    /// lines offline; [`TraceEvent::parse_line`] is the inverse.
    pub fn to_line(&self) -> String {
        format!(
            "{:016x} {} {} {} {} {} {} {} {} {} {}",
            self.signature,
            self.submitted_ns,
            self.queued_ns,
            self.decided_ns,
            self.executed_ns,
            self.completed_ns,
            self.scheme,
            self.backend.label(),
            self.error.label(),
            self.fused,
            self.simplify_ns,
        )
    }

    /// Parse one [`TraceEvent::to_line`] line.  Comment lines (leading
    /// `#`) and blank lines are the caller's to skip; anything else that
    /// is not exactly eleven well-formed fields is an error naming the
    /// offending field.
    pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
        let mut fields = line.split_ascii_whitespace();
        let mut next = |name: &str| fields.next().ok_or_else(|| format!("missing {name}"));
        let u64_field = |name: &str, s: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("bad {name} {s:?} (expected decimal u64)"))
        };
        let signature = {
            let s = next("signature")?;
            u64::from_str_radix(s, 16).map_err(|_| format!("bad signature {s:?} (expected hex)"))?
        };
        let submitted_ns = u64_field("submitted_ns", next("submitted_ns")?)?;
        let queued_ns = u64_field("queued_ns", next("queued_ns")?)?;
        let decided_ns = u64_field("decided_ns", next("decided_ns")?)?;
        let executed_ns = u64_field("executed_ns", next("executed_ns")?)?;
        let completed_ns = u64_field("completed_ns", next("completed_ns")?)?;
        let scheme = {
            let s = next("scheme")?;
            s.parse::<u8>()
                .map_err(|_| format!("bad scheme {s:?} (expected u8 code)"))?
        };
        let backend = {
            let s = next("backend")?;
            TraceBackend::from_label(s).ok_or_else(|| format!("bad backend {s:?}"))?
        };
        let error = {
            let s = next("error")?;
            TraceError::from_label(s).ok_or_else(|| format!("bad error {s:?}"))?
        };
        let fused = {
            let s = next("fused")?;
            s.parse::<u16>()
                .map_err(|_| format!("bad fused {s:?} (expected u16)"))?
        };
        let simplify_ns = u64_field("simplify_ns", next("simplify_ns")?)?;
        if let Some(extra) = fields.next() {
            return Err(format!("trailing field {extra:?}"));
        }
        Ok(TraceEvent {
            signature,
            submitted_ns,
            queued_ns,
            decided_ns,
            executed_ns,
            completed_ns,
            scheme,
            backend,
            error,
            fused,
            simplify_ns,
        })
    }

    fn pack(&self) -> [u64; EVENT_WORDS] {
        let backend = match self.backend {
            TraceBackend::Software => 0u64,
            TraceBackend::Pclr => 1,
            TraceBackend::Scan => 2,
            TraceBackend::Simd => 3,
        };
        let error = match self.error {
            TraceError::None => 0u64,
            TraceError::Panicked => 1,
            TraceError::Quarantined => 2,
        };
        let tags =
            self.scheme as u64 | (backend << 8) | (error << 16) | ((self.fused as u64) << 24);
        [
            self.signature,
            self.submitted_ns,
            self.queued_ns,
            self.decided_ns,
            self.executed_ns,
            self.completed_ns,
            tags,
            self.simplify_ns,
        ]
    }

    fn unpack(words: &[u64; EVENT_WORDS]) -> TraceEvent {
        let tags = words[6];
        TraceEvent {
            signature: words[0],
            submitted_ns: words[1],
            queued_ns: words[2],
            decided_ns: words[3],
            executed_ns: words[4],
            completed_ns: words[5],
            scheme: (tags & 0xff) as u8,
            backend: match (tags >> 8) & 0xff {
                1 => TraceBackend::Pclr,
                2 => TraceBackend::Scan,
                3 => TraceBackend::Simd,
                _ => TraceBackend::Software,
            },
            error: match (tags >> 16) & 0xff {
                1 => TraceError::Panicked,
                2 => TraceError::Quarantined,
                _ => TraceError::None,
            },
            fused: ((tags >> 24) & 0xffff) as u16,
            simplify_ns: words[7],
        }
    }
}

#[derive(Debug)]
struct Slot {
    /// `0` = never written; odd = write in progress; even `2k` = slot
    /// holds the event of ticket `k - 1`.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// Fixed-capacity, lock-free, multi-producer ring of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Slot>,
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        TraceRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed (including any later overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped because two writers a full lap apart raced for the
    /// same slot (rare; requires `capacity` pushes during one write).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one event.  Wait-free except for a single CAS; on
    /// contention (another writer holds or laps the slot) the event is
    /// dropped and counted instead of blocking.
    pub fn push(&self, event: &TraceEvent) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let cur = slot.seq.load(Ordering::Relaxed);
        // Odd = a writer is mid-update; otherwise claim whatever even
        // value is there (healing slots whose previous lap was dropped).
        if cur % 2 == 1
            || slot
                .seq
                .compare_exchange(cur, 2 * ticket + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (w, v) in slot.words.iter().zip(event.pack()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store((ticket + 1) * 2, Ordering::Release);
    }

    /// Copy out the retained events, most recent first.  Slots a writer
    /// is mid-update on are skipped, never torn.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.mask + 1);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in (start..head).rev() {
            let slot = &self.slots[(ticket & self.mask) as usize];
            let want = (ticket + 1) * 2;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != want {
                continue;
            }
            let mut words = [0u64; EVENT_WORDS];
            for (v, w) in words.iter_mut().zip(&slot.words) {
                *v = w.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) == want {
                out.push(TraceEvent::unpack(&words));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(signature: u64) -> TraceEvent {
        TraceEvent {
            signature,
            submitted_ns: signature * 10,
            queued_ns: signature * 10 + 1,
            decided_ns: signature * 10 + 2,
            executed_ns: signature * 10 + 3,
            completed_ns: signature * 10 + 4,
            scheme: (signature % 7) as u8,
            backend: match signature % 4 {
                0 => TraceBackend::Software,
                1 => TraceBackend::Pclr,
                2 => TraceBackend::Scan,
                _ => TraceBackend::Simd,
            },
            error: TraceError::None,
            fused: (signature % 5) as u16 + 1,
            simplify_ns: signature % 2,
        }
    }

    #[test]
    fn pack_unpack_round_trips() {
        for sig in [0u64, 1, 2, 3, 41, u32::MAX as u64] {
            let mut e = ev(sig);
            e.error = TraceError::Quarantined;
            e.scheme = u8::MAX;
            e.fused = u16::MAX;
            e.simplify_ns = u64::MAX;
            assert_eq!(TraceEvent::unpack(&e.pack()), e);
        }
    }

    #[test]
    fn dump_line_round_trips() {
        for sig in [0u64, 1, 2, 3, 41, u32::MAX as u64] {
            let mut e = ev(sig);
            e.error = TraceError::Panicked;
            e.scheme = u8::MAX;
            e.fused = u16::MAX;
            e.simplify_ns = u64::MAX;
            assert_eq!(TraceEvent::parse_line(&e.to_line()), Ok(e));
        }
    }

    #[test]
    fn dump_line_rejects_malformed_input() {
        let good = ev(41).to_line();
        // Each field mutated into garbage must fail with a named error.
        for bad in [
            "",
            "zz 1 2 3 4 5 0 software none 1 0",
            "0029 x 2 3 4 5 0 software none 1 0",
            "0029 1 2 3 4 5 300 software none 1 0",
            "0029 1 2 3 4 5 0 gpu none 1 0",
            "0029 1 2 3 4 5 0 software maybe 1 0",
            "0029 1 2 3 4 5 0 software none 99999 0",
            "0029 1 2 3 4 5 0 software none 1",
        ] {
            assert!(TraceEvent::parse_line(bad).is_err(), "accepted {bad:?}");
        }
        assert!(TraceEvent::parse_line(&format!("{good} extra")).is_err());
    }

    #[test]
    fn every_backend_tag_round_trips() {
        for backend in [
            TraceBackend::Software,
            TraceBackend::Pclr,
            TraceBackend::Scan,
            TraceBackend::Simd,
        ] {
            let e = TraceEvent { backend, ..ev(17) };
            assert_eq!(TraceEvent::unpack(&e.pack()).backend, backend);
        }
    }

    #[test]
    fn stage_attribution_sums_to_end_to_end() {
        let e = TraceEvent {
            signature: 1,
            submitted_ns: 100,
            queued_ns: 150,
            decided_ns: 180,
            executed_ns: 480,
            completed_ns: 500,
            scheme: 2,
            backend: TraceBackend::Simd,
            error: TraceError::None,
            fused: 1,
            simplify_ns: 40,
        };
        assert_eq!(e.stage_queue(), 50);
        assert_eq!(e.stage_decide(), 30);
        assert_eq!(e.stage_simplify(), 40);
        assert_eq!(e.stage_exec(), 260);
        assert_eq!(e.stage_completion(), 20);
        assert_eq!(
            e.stage_queue()
                + e.stage_decide()
                + e.stage_simplify()
                + e.stage_exec()
                + e.stage_completion(),
            e.end_to_end()
        );
        // Unexecuted jobs (zeroed decided/executed stamps) attribute to
        // zero, never underflow.
        let dead = TraceEvent {
            decided_ns: 0,
            executed_ns: 0,
            simplify_ns: 0,
            ..e
        };
        assert_eq!(dead.stage_decide(), 0);
        assert_eq!(dead.stage_exec(), 0);
    }

    #[test]
    fn ring_retains_most_recent_first() {
        let ring = TraceRing::new(4);
        for sig in 0..3 {
            ring.push(&ev(sig));
        }
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.signature).collect::<Vec<_>>(),
            vec![2, 1, 0]
        );
    }

    #[test]
    fn wraparound_keeps_only_the_last_capacity_events() {
        let ring = TraceRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for sig in 0..11 {
            ring.push(&ev(sig));
        }
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.signature).collect::<Vec<_>>(),
            vec![10, 9, 8, 7]
        );
        assert_eq!(ring.recorded(), 11);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        let ring = Arc::new(TraceRing::new(64));
        let threads = 8u64;
        let per = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..per {
                        ring.push(&ev(t * per + i));
                    }
                });
            }
            // Snapshot continuously while writers run: every event we
            // get back must be internally consistent (the timestamps
            // are derived from the signature).
            for _ in 0..200 {
                for e in ring.snapshot() {
                    assert_eq!(e.submitted_ns, e.signature * 10);
                    assert_eq!(e.completed_ns, e.signature * 10 + 4);
                    assert_eq!(e.scheme, (e.signature % 7) as u8);
                }
            }
        });
        assert_eq!(ring.recorded(), threads * per);
        let snap = ring.snapshot();
        // Quiescent: every slot readable, nothing torn, at most
        // `dropped` gaps.
        assert!(snap.len() as u64 >= 64 - ring.dropped().min(64));
        for e in &snap {
            assert_eq!(e.queued_ns, e.signature * 10 + 1);
        }
    }
}
