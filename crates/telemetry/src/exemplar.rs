//! A bounded store of slowest-N exemplar jobs per class.
//!
//! Histograms say *how bad* the tail is; the trace ring says *what the
//! last few thousand jobs did*.  Neither can answer "show me the p99
//! job's decision" an hour later — the ring has wrapped and the
//! histogram never kept the job.  The [`ExemplarStore`] fills that gap:
//! for each job class it retains the `per_class` slowest observations,
//! each carrying an arbitrary payload (the runtime stores the job's
//! decision record and stage breakdown), and evicts by **per-class
//! latency floor** — a new sample is only admitted once it is slower
//! than the fastest exemplar the class currently retains, which it then
//! displaces.
//!
//! ## Bounds and lock discipline
//!
//! The store is doubly bounded: at most `max_classes` classes, at most
//! `per_class` exemplars each, so memory is `O(max_classes × per_class)`
//! regardless of traffic.  When the class table is full, an unseen class
//! must beat the *weakest* retained class's floor to enter, displacing
//! that class's floor exemplar (and the class itself once empty).
//!
//! Mutation takes one short [`Mutex`] critical section, but the hot
//! path — a job that is *not* slow, i.e. almost every job — never locks:
//! a saturated store publishes its global admission floor in an atomic,
//! and [`ExemplarStore::offer`] returns before locking (and before even
//! materializing the payload) when the sample cannot possibly be
//! admitted.  Payloads are built lazily via closure for the same
//! reason: rendering a decision record for a fast job would waste more
//! time than the lock it avoids.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One retained slow-job observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar<T> {
    /// The job's class (domain signature).
    pub class: u64,
    /// End-to-end latency that earned the job its slot, in nanoseconds.
    pub latency_ns: u64,
    /// Caller-supplied context (decision record, stage breakdown, …).
    pub payload: T,
}

/// Bounded slowest-N-per-class exemplar retention (see module docs).
#[derive(Debug)]
pub struct ExemplarStore<T> {
    per_class: usize,
    max_classes: usize,
    /// When the store is saturated (class table full, every class full),
    /// the smallest latency that could still be admitted; `0` otherwise.
    /// A lock-free pre-filter only — admission is re-checked under the
    /// lock, so a stale hint costs a lock, never a wrong answer.
    admit_floor: AtomicU64,
    evictions: AtomicU64,
    classes: Mutex<HashMap<u64, Vec<(u64, T)>>>,
}

impl<T> ExemplarStore<T> {
    /// A store retaining the `per_class` slowest jobs for up to
    /// `max_classes` classes (both clamped to at least 1).
    pub fn new(per_class: usize, max_classes: usize) -> Self {
        ExemplarStore {
            per_class: per_class.max(1),
            max_classes: max_classes.max(1),
            admit_floor: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            classes: Mutex::new(HashMap::new()),
        }
    }

    /// Exemplars retained per class.
    pub fn per_class(&self) -> usize {
        self.per_class
    }

    /// Exemplars displaced by slower samples (floor evictions, within a
    /// class or across classes when the table is full).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Offer one observation.  `payload` runs only if the sample is
    /// actually admitted; samples a saturated store cannot admit return
    /// without locking.
    pub fn offer(&self, class: u64, latency_ns: u64, payload: impl FnOnce() -> T) {
        let floor = self.admit_floor.load(Ordering::Relaxed);
        if floor > 0 && latency_ns <= floor {
            return;
        }
        let mut map = self.classes.lock().unwrap();
        if let Some(kept) = map.get_mut(&class) {
            if kept.len() >= self.per_class {
                // Full class: must beat its floor (slot 0 — kept sorted
                // ascending by latency).
                if latency_ns <= kept[0].0 {
                    return;
                }
                kept.remove(0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            let at = kept.partition_point(|(l, _)| *l < latency_ns);
            kept.insert(at, (latency_ns, payload()));
        } else {
            if map.len() >= self.max_classes {
                // Class table full: displace the weakest class's floor
                // exemplar if this sample beats it.
                let Some((&weakest, _)) = map
                    .iter()
                    .min_by_key(|(_, kept)| kept.first().map_or(0, |(l, _)| *l))
                else {
                    return;
                };
                let kept = map.get_mut(&weakest).unwrap();
                if kept.first().is_some_and(|(l, _)| latency_ns <= *l) {
                    self.refresh_floor(&map);
                    return;
                }
                if !kept.is_empty() {
                    kept.remove(0);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                if kept.is_empty() {
                    map.remove(&weakest);
                }
            }
            map.insert(class, vec![(latency_ns, payload())]);
        }
        self.refresh_floor(&map);
    }

    /// Recompute the saturated-store admission floor (0 while any slot —
    /// class or exemplar — is still free).
    fn refresh_floor(&self, map: &HashMap<u64, Vec<(u64, T)>>) {
        let saturated =
            map.len() >= self.max_classes && map.values().all(|k| k.len() >= self.per_class);
        let floor = if saturated {
            map.values()
                .filter_map(|k| k.first().map(|(l, _)| *l))
                .min()
                .unwrap_or(0)
        } else {
            0
        };
        self.admit_floor.store(floor, Ordering::Relaxed);
    }

    /// Total exemplars currently retained.
    pub fn len(&self) -> usize {
        self.classes.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The latency a new sample of `class` must beat to be admitted
    /// (`None` while the class still has free slots).
    pub fn class_floor(&self, class: u64) -> Option<u64> {
        let map = self.classes.lock().unwrap();
        let kept = map.get(&class)?;
        if kept.len() >= self.per_class {
            kept.first().map(|(l, _)| *l)
        } else {
            None
        }
    }
}

impl<T: Clone> ExemplarStore<T> {
    /// The `n` slowest retained exemplars across all classes, slowest
    /// first.
    pub fn top(&self, n: usize) -> Vec<Exemplar<T>> {
        let map = self.classes.lock().unwrap();
        let mut all: Vec<Exemplar<T>> = map
            .iter()
            .flat_map(|(&class, kept)| {
                kept.iter().map(move |(latency_ns, payload)| Exemplar {
                    class,
                    latency_ns: *latency_ns,
                    payload: payload.clone(),
                })
            })
            .collect();
        all.sort_by_key(|e| std::cmp::Reverse((e.latency_ns, e.class)));
        all.truncate(n);
        all
    }

    /// Every retained exemplar, slowest first.
    pub fn snapshot(&self) -> Vec<Exemplar<T>> {
        self.top(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn retains_the_slowest_n_per_class() {
        let store = ExemplarStore::new(3, 8);
        for lat in [50u64, 10, 90, 30, 70] {
            store.offer(1, lat, || lat);
        }
        let kept: Vec<u64> = store.snapshot().iter().map(|e| e.latency_ns).collect();
        assert_eq!(kept, vec![90, 70, 50]);
        assert_eq!(store.evictions(), 2);
        assert_eq!(store.class_floor(1), Some(50));
    }

    #[test]
    fn class_floor_gates_admission_and_payload_is_lazy() {
        let store = ExemplarStore::new(2, 1);
        let built = AtomicUsize::new(0);
        let mk = || built.fetch_add(1, Ordering::Relaxed);
        store.offer(7, 100, mk);
        store.offer(7, 200, mk);
        assert_eq!(built.load(Ordering::Relaxed), 2);
        // Below the floor: rejected without materializing the payload.
        store.offer(7, 100, mk);
        store.offer(7, 5, mk);
        assert_eq!(built.load(Ordering::Relaxed), 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn class_table_is_bounded_and_evicts_the_weakest_class() {
        let store = ExemplarStore::new(1, 2);
        store.offer(1, 100, || ());
        store.offer(2, 50, || ());
        // A third class must beat the weakest floor (50) to enter.
        store.offer(3, 40, || ());
        assert_eq!(store.len(), 2);
        assert!(store.class_floor(3).is_none());
        store.offer(3, 60, || ());
        let classes: Vec<u64> = store.snapshot().iter().map(|e| e.class).collect();
        assert_eq!(classes, vec![1, 3]);
        assert_eq!(store.evictions(), 1);
    }

    #[test]
    fn top_orders_across_classes_slowest_first() {
        let store = ExemplarStore::new(2, 4);
        for (class, lat) in [(1u64, 10u64), (1, 40), (2, 30), (2, 20)] {
            store.offer(class, lat, || ());
        }
        let top: Vec<(u64, u64)> = store
            .top(3)
            .iter()
            .map(|e| (e.class, e.latency_ns))
            .collect();
        assert_eq!(top, vec![(1, 40), (2, 30), (2, 20)]);
    }

    #[test]
    fn saturated_store_publishes_a_lock_free_admission_floor() {
        let store = ExemplarStore::new(1, 2);
        store.offer(1, 100, || ());
        assert_eq!(store.admit_floor.load(Ordering::Relaxed), 0);
        store.offer(2, 200, || ());
        // Saturated: floor is the weakest retained latency.
        assert_eq!(store.admit_floor.load(Ordering::Relaxed), 100);
        // A slower sample still gets in and the floor advances.
        store.offer(3, 150, || ());
        assert_eq!(store.admit_floor.load(Ordering::Relaxed), 150);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn concurrent_offers_keep_bounds() {
        let store = std::sync::Arc::new(ExemplarStore::new(4, 8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        store.offer(t % 3, i * 7 + t, || i);
                    }
                });
            }
        });
        assert!(store.len() <= 4 * 3);
        // The slowest offered sample always survives.
        let top = store.top(1);
        assert_eq!(top[0].latency_ns, 999 * 7 + 7);
    }
}
