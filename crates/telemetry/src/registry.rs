//! The metric registry: static metric names × dynamic labels, with a
//! Prometheus-style text exposition.
//!
//! A [`Registry`] hands out shared [`LogHistogram`]s and monotonic
//! counters keyed by a **static metric name** (`"smartapps_exec_ns"`)
//! and one **dynamic label** pair (`scheme="hash"`, `conn="42"`,
//! `domain="d9r1s10m2"`).  Lookup takes a short mutex on a sorted map;
//! recording through the returned [`Arc`] is lock-free, so hot paths
//! either cache the `Arc` or pay one cheap map probe per event.
//!
//! [`render_prometheus`](Registry::render_prometheus) produces the
//! standard text exposition (`*_bucket{…,le="…"}` cumulative counts plus
//! `*_sum`/`*_count`, and plain counters) that any scraper — or a
//! human with `nc` — can consume; [`summaries`](Registry::summaries)
//! produces the compact per-histogram quantile digest the `stats v2`
//! wire response carries.  Both iterate the maps in sorted key order, so
//! output is deterministic.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, LogHistogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key of one registered series: metric name, label key, label value.
type SeriesKey = (&'static str, &'static str, String);

/// Compact digest of one histogram series, as carried by `stats v2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Metric name (e.g. `smartapps_exec_ns`).
    pub name: String,
    /// Label key (e.g. `scheme`).
    pub label_key: String,
    /// Label value (e.g. `hash`).
    pub label_value: String,
    /// Total samples.
    pub count: u64,
    /// Nearest-rank median, bucket-bounded (see
    /// [`HistogramSnapshot::quantile`]).
    pub p50: u64,
    /// 95th percentile, bucket-bounded.
    pub p95: u64,
    /// 99th percentile, bucket-bounded.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

/// A name × label registry of histograms and counters.
#[derive(Debug, Default)]
pub struct Registry {
    hists: Mutex<BTreeMap<SeriesKey, Arc<LogHistogram>>>,
    counters: Mutex<BTreeMap<SeriesKey, Arc<AtomicU64>>>,
}

/// Keep label values exposition-safe: Prometheus label values would need
/// escaping for `"`/`\`/newline, and the `stats v2` line grammar splits
/// on whitespace and `:` — so anything outside `[A-Za-z0-9._-]` becomes
/// `_` at registration time and every consumer stays simple.
fn sanitize(value: &str) -> String {
    value
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram for `name{label_key="label_value"}`, created empty
    /// on first use.  The returned handle records lock-free; callers on
    /// hot paths should keep it.
    pub fn histogram(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Arc<LogHistogram> {
        let mut map = self.hists.lock().unwrap_or_else(|p| p.into_inner());
        map.entry((name, label_key, sanitize(label_value)))
            .or_default()
            .clone()
    }

    /// Record one sample into `name{label_key="label_value"}` — the
    /// one-shot convenience for paths cold enough to pay the map probe.
    pub fn record(&self, name: &'static str, label_key: &'static str, label_value: &str, v: u64) {
        self.histogram(name, label_key, label_value).record(v);
    }

    /// The monotonic counter for `name{label_key="label_value"}`.
    pub fn counter(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        map.entry((name, label_key, sanitize(label_value)))
            .or_default()
            .clone()
    }

    /// Add `n` to a counter (cold-path convenience).
    pub fn add(&self, name: &'static str, label_key: &'static str, label_value: &str, n: u64) {
        self.counter(name, label_key, label_value)
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of one histogram series, if it exists.
    pub fn snapshot_of(
        &self,
        name: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Option<HistogramSnapshot> {
        let map = self.hists.lock().unwrap_or_else(|p| p.into_inner());
        map.get(&(name, label_key, sanitize(label_value)))
            .map(|h| h.snapshot())
    }

    /// Merged snapshot of every series of `name`, across all labels —
    /// the service-wide aggregate of a per-connection or per-scheme
    /// histogram family.
    pub fn merged_snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let map = self.hists.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = HistogramSnapshot::default();
        for ((n, _, _), h) in map.iter() {
            if *n == name {
                out.merge(&h.snapshot());
            }
        }
        out
    }

    /// Compact digests of every non-empty histogram series, in sorted
    /// (name, label key, label value) order — the `stats v2` payload.
    pub fn summaries(&self) -> Vec<HistSummary> {
        let snaps: Vec<(SeriesKey, HistogramSnapshot)> = {
            let map = self.hists.lock().unwrap_or_else(|p| p.into_inner());
            map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
        };
        snaps
            .into_iter()
            .filter(|(_, s)| s.count > 0)
            .map(|((name, lk, lv), s)| HistSummary {
                name: name.to_string(),
                label_key: lk.to_string(),
                label_value: lv,
                count: s.count,
                p50: s.quantile(0.50),
                p95: s.quantile(0.95),
                p99: s.quantile(0.99),
                max: s.max,
            })
            .collect()
    }

    /// Render the registry as Prometheus-style text exposition
    /// (`docs/OBSERVABILITY.md` documents the grammar).  Histograms emit
    /// cumulative `_bucket{…,le="…"}` lines at the log2 bounds up to the
    /// highest occupied bucket plus `le="+Inf"`, then `_sum` and
    /// `_count`; counters emit one sample line each.  Empty series are
    /// skipped; ordering is deterministic (sorted keys).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let hists: Vec<(SeriesKey, HistogramSnapshot)> = {
            let map = self.hists.lock().unwrap_or_else(|p| p.into_inner());
            map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
        };
        let mut last_name = "";
        for ((name, lk, lv), s) in hists.iter().filter(|(_, s)| s.count > 0) {
            if *name != last_name {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                last_name = name;
            }
            let mut cum = 0u64;
            let top = s.last_occupied_bucket().unwrap_or(0);
            for (i, &n) in s.buckets.iter().enumerate().take(top + 1) {
                cum += n;
                out.push_str(&format!(
                    "{name}_bucket{{{lk}=\"{lv}\",le=\"{}\"}} {cum}\n",
                    bucket_upper_bound(i)
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{{lk}=\"{lv}\",le=\"+Inf\"}} {}\n",
                s.count
            ));
            out.push_str(&format!("{name}_sum{{{lk}=\"{lv}\"}} {}\n", s.sum));
            out.push_str(&format!("{name}_count{{{lk}=\"{lv}\"}} {}\n", s.count));
        }
        let counters: Vec<(SeriesKey, u64)> = {
            let map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
            map.iter()
                .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed)))
                .collect()
        };
        let mut last_name = "";
        for ((name, lk, lv), v) in counters {
            if name != last_name {
                out.push_str(&format!("# TYPE {name} counter\n"));
                last_name = name;
            }
            out.push_str(&format!("{name}{{{lk}=\"{lv}\"}} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_handles_are_shared_per_series() {
        let r = Registry::new();
        let a = r.histogram("m_ns", "scheme", "hash");
        let b = r.histogram("m_ns", "scheme", "hash");
        let c = r.histogram("m_ns", "scheme", "rep");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        a.record(5);
        assert_eq!(b.count(), 1);
        assert_eq!(r.snapshot_of("m_ns", "scheme", "hash").unwrap().count, 1);
        assert!(r.snapshot_of("m_ns", "scheme", "zzz").is_none());
    }

    #[test]
    fn label_values_are_sanitized() {
        let r = Registry::new();
        r.record("m_ns", "conn", "4 2\"x\n", 1);
        assert_eq!(r.snapshot_of("m_ns", "conn", "4_2_x_").unwrap().count, 1);
        let text = r.render_prometheus();
        assert!(text.contains("conn=\"4_2_x_\""), "{text}");
    }

    #[test]
    fn merged_snapshot_aggregates_labels() {
        let r = Registry::new();
        r.record("lat_ns", "conn", "0", 10);
        r.record("lat_ns", "conn", "1", 1000);
        r.record("other_ns", "conn", "0", 7);
        let m = r.merged_snapshot("lat_ns");
        assert_eq!(m.count, 2);
        assert_eq!(m.max, 1000);
    }

    #[test]
    fn exposition_contains_cumulative_buckets_and_counters() {
        let r = Registry::new();
        for v in [1u64, 2, 4, 4, 1000] {
            r.record("lat_ns", "scheme", "hash", v);
        }
        r.add("jobs_total", "kind", "ok", 3);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{scheme=\"hash\",le=\"1\"} 1\n"));
        assert!(text.contains("lat_ns_bucket{scheme=\"hash\",le=\"3\"} 2\n"));
        assert!(text.contains("lat_ns_bucket{scheme=\"hash\",le=\"7\"} 4\n"));
        assert!(text.contains("lat_ns_bucket{scheme=\"hash\",le=\"+Inf\"} 5\n"));
        assert!(text.contains("lat_ns_sum{scheme=\"hash\"} 1011\n"));
        assert!(text.contains("lat_ns_count{scheme=\"hash\"} 5\n"));
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total{kind=\"ok\"} 3\n"));
    }

    #[test]
    fn summaries_are_sorted_and_skip_empty_series() {
        let r = Registry::new();
        let _empty = r.histogram("b_ns", "scheme", "rep");
        r.record("b_ns", "scheme", "hash", 100);
        r.record("a_ns", "conn", "7", 50);
        let sums = r.summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].name, "a_ns");
        assert_eq!(sums[1].name, "b_ns");
        assert_eq!(sums[1].label_value, "hash");
        assert_eq!(sums[1].count, 1);
        assert_eq!(sums[1].max, 100);
        // The bucket bound (127) is clipped to the exact max.
        assert_eq!(sums[1].p99, 100);
    }
}
