//! The paper's applications, regenerated as parameterized synthetic
//! workloads.
//!
//! Two experiment families use them:
//!
//! * **Figure 3** (software adaptive selection, 8 processors): Irreg, Nbf,
//!   Moldyn, Spark98, Charmm and Spice at several input sizes, each row
//!   giving the measured MO / input size / SP / CON / CHR and the scheme
//!   the decision model recommended, validated against measured rankings.
//! * **Table 2 / Figures 6–7** (PCLR, simulated 16-node CC-NUMA): Euler,
//!   Equake, Vml, Charmm and Nbf reduction loops with their per-loop
//!   statistics (iterations per invocation, instructions and reduction
//!   operations per iteration, reduction array size).
//!
//! We cannot replay the original FORTRAN codes; instead each row is mapped
//! to a [`PatternSpec`]/[`edge_list`]/[`smvp_pattern`] generator whose
//! measured characteristics match the row (see `DESIGN.md` for the
//! substitution argument).

use crate::mesh::{edge_list, smvp_pattern, Distribution, PatternSpec};
use crate::pattern::AccessPattern;
use serde::{Deserialize, Serialize};

/// One row of Figure 3's validation table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Application name.
    pub app: &'static str,
    /// Loop identifier as given in the paper.
    pub loop_name: &'static str,
    /// Mobility: distinct reduction elements referenced per iteration.
    pub mo: usize,
    /// Reduction array dimension (the table's "INPUT"/DIM column).
    pub n: usize,
    /// Sparsity in percent (referenced / dimension × 100).
    pub sp_pct: f64,
    /// Connectivity: iterations per distinct referenced element.
    pub con: f64,
    /// CHR as printed in the paper (reference normalization differs from
    /// ours; kept for report comparison only).
    pub chr_paper: f64,
    /// The scheme the paper's model recommended for this row.
    pub recommended_paper: &'static str,
    /// The paper's measured best scheme (first in its ranking column).
    pub best_paper: &'static str,
    /// Whether local-write (owner-computes) is applicable: iteration
    /// replication is impossible when the loop body modifies other shared
    /// arrays.
    pub lw_feasible: bool,
    /// Reference distribution: mesh codes (Irreg, Moldyn, Charmm) have
    /// spatially clustered references; pair lists and device stamps (Nbf,
    /// Spark98, Spice) scatter.
    pub dist: Distribution,
}

/// All sixteen rows of Figure 3.
pub fn fig3_rows() -> Vec<Fig3Row> {
    let r = |app: &'static str, loop_name, mo, n, sp_pct, con, chr_paper, rec, best, lw| {
        let dist = match app {
            "Irreg" | "Moldyn" | "Charmm" => Distribution::Clustered { window: 32 },
            _ => Distribution::Uniform,
        };
        Fig3Row {
            app,
            loop_name,
            mo,
            n,
            sp_pct,
            con,
            chr_paper,
            recommended_paper: rec,
            best_paper: best,
            lw_feasible: lw,
            dist,
        }
    };
    vec![
        r(
            "Irreg", "do100", 2, 100_000, 25.0, 100.0, 0.92, "rep", "rep", true,
        ),
        r(
            "Irreg", "do100", 2, 500_000, 5.0, 20.0, 0.71, "lw", "lw", true,
        ),
        r(
            "Irreg", "do100", 2, 1_000_000, 1.25, 5.0, 0.40, "lw", "lw", true,
        ),
        r(
            "Irreg", "do100", 2, 2_000_000, 0.25, 1.0, 0.26, "sel", "sel", true,
        ),
        r(
            "Nbf", "do50", 1, 25_600, 25.0, 200.0, 0.25, "ll", "sel", false,
        ),
        r(
            "Nbf", "do50", 1, 128_000, 6.25, 50.0, 0.25, "sel", "sel", false,
        ),
        r(
            "Nbf", "do50", 1, 256_000, 0.625, 5.0, 0.25, "sel", "sel", false,
        ),
        r(
            "Nbf", "do50", 1, 1_280_000, 0.25, 2.0, 0.25, "sel", "sel", false,
        ),
        r(
            "Moldyn",
            "ComputeForces",
            2,
            16_384,
            23.94,
            95.75,
            0.41,
            "rep",
            "rep",
            false,
        ),
        r(
            "Moldyn",
            "ComputeForces",
            2,
            42_592,
            7.75,
            31.0,
            0.36,
            "rep",
            "rep",
            false,
        ),
        r(
            "Moldyn",
            "ComputeForces",
            2,
            70_304,
            1.69,
            6.75,
            0.33,
            "ll",
            "ll",
            false,
        ),
        r(
            "Moldyn",
            "ComputeForces",
            2,
            87_808,
            0.375,
            1.5,
            0.29,
            "ll",
            "ll",
            false,
        ),
        r(
            "Spark98",
            "smvpthread",
            1,
            30_169,
            0.625,
            5.0,
            0.18,
            "sel",
            "sel",
            false,
        ),
        r(
            "Spark98",
            "smvpthread",
            1,
            7_294,
            0.6,
            4.8,
            0.2,
            "sel",
            "ll",
            false,
        ),
        r(
            "Charmm", "do78", 2, 332_288, 35.88, 17.9, 0.14, "sel", "ll", false,
        ),
        r(
            "Spice", "bjt100", 28, 186_943, 0.14, 0.04, 0.125, "hash", "hash", false,
        ),
    ]
}

impl Fig3Row {
    /// Distinct elements implied by the row (SP × N).
    pub fn distinct(&self) -> usize {
        ((self.sp_pct / 100.0) * self.n as f64).round().max(1.0) as usize
    }

    /// Iterations implied by the row (CON × distinct).
    pub fn iterations(&self) -> usize {
        (self.con * self.distinct() as f64).round().max(1.0) as usize
    }

    /// Generate the access pattern matching this row's measures.
    pub fn pattern(&self, seed: u64) -> AccessPattern {
        PatternSpec {
            num_elements: self.n,
            iterations: self.iterations(),
            refs_per_iter: self.mo,
            coverage: self.sp_pct / 100.0,
            dist: self.dist,
            seed,
        }
        .generate()
    }
}

/// One row of Table 2 (PCLR application characteristics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// Simulated loop (the paper simulates one representative loop each).
    pub loop_name: &'static str,
    /// Percent of sequential execution time spent in the reduction loops.
    pub pct_tseq: f64,
    /// Loop invocations during program execution.
    pub invocations: usize,
    /// Iterations per invocation.
    pub iters_per_invocation: usize,
    /// Instructions per iteration.
    pub instrs_per_iter: usize,
    /// Dynamic reduction operations per iteration.
    pub red_ops_per_iter: usize,
    /// Reduction array size in KB.
    pub red_array_kb: f64,
    /// Lines flushed (paper measurement, 16 processors, one loop).
    pub lines_flushed_paper: u64,
    /// Lines displaced (paper measurement, 16 processors, one loop).
    pub lines_displaced_paper: u64,
    /// Figure 6 speedups on 16 nodes: (Sw, Hw, Flex).
    pub fig6_speedups: (f64, f64, f64),
    /// Reference-stream shape used to regenerate the loop.
    pub shape: AppShape,
}

/// How an application's reduction references are distributed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AppShape {
    /// Mesh edge sweep with geometric locality (Euler, Charmm bonded).
    Mesh {
        /// Edge endpoint window.
        locality: usize,
    },
    /// Symmetric sparse matrix-vector product (Equake, Spark98).
    Smvp {
        /// Matrix bandwidth.
        bandwidth: usize,
    },
    /// Uniform scatter over a subset (Nbf pair lists, Vml).
    Scatter {
        /// Fraction of the array referenced.
        coverage: f64,
    },
}

/// All five rows of Table 2.
pub fn table2_rows() -> Vec<Table2Row> {
    vec![
        Table2Row {
            app: "Euler",
            loop_name: "dflux_do100",
            pct_tseq: 84.7,
            invocations: 120,
            iters_per_invocation: 59_863,
            instrs_per_iter: 118,
            red_ops_per_iter: 14,
            red_array_kb: 686.6,
            lines_flushed_paper: 3261,
            lines_displaced_paper: 2117,
            fig6_speedups: (1.3, 4.0, 3.5),
            shape: AppShape::Mesh { locality: 8000 },
        },
        Table2Row {
            app: "Equake",
            loop_name: "smvp",
            pct_tseq: 50.0,
            invocations: 3855,
            iters_per_invocation: 30_169,
            instrs_per_iter: 550,
            red_ops_per_iter: 22,
            red_array_kb: 707.1,
            lines_flushed_paper: 742,
            lines_displaced_paper: 580,
            fig6_speedups: (7.3, 14.0, 10.6),
            shape: AppShape::Smvp { bandwidth: 900 },
        },
        Table2Row {
            app: "Vml",
            loop_name: "VecMult_CAB",
            pct_tseq: 89.4,
            invocations: 1,
            iters_per_invocation: 4_929,
            instrs_per_iter: 135,
            red_ops_per_iter: 6,
            red_array_kb: 40.0,
            lines_flushed_paper: 168,
            lines_displaced_paper: 0,
            fig6_speedups: (3.1, 6.1, 5.0),
            shape: AppShape::Smvp { bandwidth: 48 },
        },
        Table2Row {
            app: "Charmm",
            loop_name: "dynamc_do",
            pct_tseq: 82.8,
            invocations: 1,
            iters_per_invocation: 82_944,
            instrs_per_iter: 420,
            red_ops_per_iter: 54,
            red_array_kb: 1947.0,
            lines_flushed_paper: 1849,
            lines_displaced_paper: 330,
            fig6_speedups: (1.9, 9.9, 7.7),
            shape: AppShape::Mesh { locality: 2000 },
        },
        Table2Row {
            app: "Nbf",
            loop_name: "nbf_do50",
            pct_tseq: 99.1,
            invocations: 1,
            iters_per_invocation: 128_000,
            instrs_per_iter: 1_880,
            red_ops_per_iter: 200,
            red_array_kb: 1000.0,
            lines_flushed_paper: 238,
            lines_displaced_paper: 1774,
            fig6_speedups: (9.1, 15.6, 14.2),
            shape: AppShape::Mesh { locality: 3000 },
        },
    ]
}

impl Table2Row {
    /// Reduction array dimension (8-byte elements).
    pub fn num_elements(&self) -> usize {
        (self.red_array_kb * 1024.0 / 8.0).round() as usize
    }

    /// Generate this loop's access pattern, scaled to `iters` iterations
    /// (use [`Table2Row::iters_per_invocation`] for full scale).
    pub fn pattern(&self, iters: usize, seed: u64) -> AccessPattern {
        let n = self.num_elements();
        match self.shape {
            AppShape::Mesh { locality } => {
                // Each iteration is one edge visit; red_ops_per_iter
                // references spread over edge endpoints revisited per
                // iteration: we model it as red_ops/2 edges' endpoints.
                let refs = self.red_ops_per_iter.max(2);

                PatternSpec {
                    num_elements: n,
                    iterations: iters,
                    refs_per_iter: refs,
                    coverage: 1.0,
                    dist: Distribution::Clustered {
                        window: locality as u32,
                    },
                    seed,
                }
                .generate()
            }
            AppShape::Smvp { bandwidth } => {
                // Rows map 1:1 onto the leading elements; a scaled-down
                // simulation covers a contiguous prefix of the array, which
                // preserves per-iteration spatial density (row partitioning)
                // — the property the flush/displacement behaviour depends
                // on.
                let rows = iters.min(n);
                let mut p = smvp_pattern(rows.max(2), self.red_ops_per_iter, bandwidth, seed);
                p.num_elements = n;
                debug_assert!(p.validate().is_ok());
                p
            }
            AppShape::Scatter { coverage } => PatternSpec {
                num_elements: n,
                iterations: iters,
                refs_per_iter: self.red_ops_per_iter,
                coverage,
                dist: Distribution::Uniform,
                seed,
            }
            .generate(),
        }
    }

    /// Non-reduction work per iteration: total instructions minus the
    /// reduction triples (load+op+store each) and the index-stream loads.
    pub fn work_per_iter(&self) -> (u32, u32) {
        let red_instrs = self.red_ops_per_iter * 3;
        let idx_loads = self.red_ops_per_iter; // one index load per update
        let rest = self.instrs_per_iter.saturating_sub(red_instrs + idx_loads);
        // The paper's loops are FP-heavy: roughly 1/3 FP, 2/3 int/address.
        let fp = (rest / 3) as u32;
        let int = (rest - rest / 3) as u32;
        (int, fp)
    }
}

/// An Irreg-style mesh workload (quickstart/example use).
pub fn irreg_mesh(nodes: usize, edges: usize, seed: u64) -> AccessPattern {
    edge_list(nodes, edges, (nodes / 64).max(4), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::PatternChars;

    #[test]
    fn fig3_has_sixteen_rows_like_the_paper() {
        let rows = fig3_rows();
        assert_eq!(rows.len(), 16);
        assert_eq!(rows.iter().filter(|r| r.app == "Irreg").count(), 4);
        assert_eq!(rows.iter().filter(|r| r.app == "Nbf").count(), 4);
        assert_eq!(rows.iter().filter(|r| r.app == "Moldyn").count(), 4);
        assert_eq!(rows.iter().filter(|r| r.app == "Spark98").count(), 2);
        assert!(rows.iter().all(|r| r.n > 0 && r.mo > 0));
        // Only Irreg admits local-write in our mapping.
        assert!(rows.iter().all(|r| r.lw_feasible == (r.app == "Irreg")));
    }

    #[test]
    fn fig3_pattern_matches_row_measures() {
        // A mid-sized row: Nbf 128,000.
        let row = &fig3_rows()[5];
        let pat = row.pattern(11);
        let c = PatternChars::measure(&pat);
        assert_eq!(c.num_elements, row.n);
        let sp_err = (c.sp * 100.0 - row.sp_pct).abs() / row.sp_pct;
        assert!(sp_err < 0.15, "sp {} vs {}", c.sp * 100.0, row.sp_pct);
        let con_err = (c.con - row.con).abs() / row.con;
        assert!(con_err < 0.15, "con {} vs {}", c.con, row.con);
        assert!((c.mo - row.mo as f64).abs() < 0.1);
    }

    #[test]
    fn spice_row_is_extremely_sparse() {
        let row = fig3_rows().into_iter().find(|r| r.app == "Spice").unwrap();
        let pat = row.pattern(3);
        let c = PatternChars::measure(&pat);
        assert!(c.sp < 0.01, "SPICE touches well under 1%: {}", c.sp);
        assert!(c.con < 2.0);
        assert_eq!(row.recommended_paper, "hash");
    }

    #[test]
    fn table2_rows_match_paper_constants() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 5);
        let nbf = rows.iter().find(|r| r.app == "Nbf").unwrap();
        assert_eq!(nbf.iters_per_invocation, 128_000);
        assert_eq!(nbf.instrs_per_iter, 1_880);
        assert_eq!(nbf.red_ops_per_iter, 200);
        assert_eq!(nbf.num_elements(), 128_000);
        let euler = rows.iter().find(|r| r.app == "Euler").unwrap();
        assert_eq!(euler.fig6_speedups, (1.3, 4.0, 3.5));
        // Average %Tseq of the paper is 81.2.
        let avg: f64 = rows.iter().map(|r| r.pct_tseq).sum::<f64>() / 5.0;
        assert!((avg - 81.2).abs() < 0.1, "avg %Tseq {avg}");
    }

    #[test]
    fn table2_patterns_have_row_dimensions() {
        for row in table2_rows() {
            let pat = row.pattern(500, 1);
            assert_eq!(pat.num_elements, row.num_elements(), "{}", row.app);
            assert_eq!(pat.num_iterations(), 500, "{}", row.app);
            let c = PatternChars::measure(&pat);
            assert!(
                (c.array_kb() - row.red_array_kb).abs() / row.red_array_kb < 0.01,
                "{}: {} KB vs {} KB",
                row.app,
                c.array_kb(),
                row.red_array_kb
            );
        }
    }

    #[test]
    fn work_per_iter_accounts_for_reduction_instrs() {
        for row in table2_rows() {
            let (int, fp) = row.work_per_iter();
            let total =
                int as usize + fp as usize + row.red_ops_per_iter * 3 + row.red_ops_per_iter;
            assert!(
                total <= row.instrs_per_iter + 1,
                "{}: {} > {}",
                row.app,
                total,
                row.instrs_per_iter
            );
            assert!(int > 0 || fp > 0, "{}", row.app);
        }
    }

    #[test]
    fn irreg_mesh_is_mo2() {
        let p = irreg_mesh(1000, 4000, 5);
        let c = PatternChars::measure(&p);
        assert!((c.mo - 2.0).abs() < 0.05);
    }
}
