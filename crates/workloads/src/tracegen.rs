//! Lowering access patterns to simulator instruction traces.
//!
//! Three lowering targets, matching the systems of Figure 6:
//!
//! * **Seq** — the sequential baseline: one processor, direct updates on
//!   the shared reduction array, all data local (the paper's sequential
//!   placement);
//! * **Sw** — the software-only parallel scheme: per-processor fully
//!   replicated private arrays with an *Init* sweep, a *Loop* phase
//!   updating private storage, and a *Merge* phase in which each processor
//!   combines all partial arrays over its block of the shared array (this
//!   is the phase whose time does not shrink with more processors);
//! * **PCLR** — the hardware scheme: the loop issues reduction updates to
//!   shadow addresses; no Init; the *Merge* phase is just the cache flush.
//!
//! Traces stream lazily: multi-million-instruction loops never materialize.

use crate::pattern::{contribution, AccessPattern};
use smartapps_sim::addr::{regions, to_shadow, Addr};
use smartapps_sim::redop::RedOp;
use smartapps_sim::trace::{Inst, Phase, TraceSource};
use std::collections::VecDeque;
use std::sync::Arc;

/// Indices per cache line of the (4-byte) index stream.
const IDX_PER_LINE: usize = 16;

/// A caller-supplied contribution lowering: maps `(iteration, global
/// reference slot)` to the 8-byte bit pattern the trace's reduction
/// updates carry.  This is how `smartapps-runtime`'s PCLR backend embeds
/// an arbitrary job body's values into the simulated machine.
pub type ValueFn = Arc<dyn Fn(usize, usize) -> u64 + Send + Sync>;

/// Per-iteration non-reduction work and the reduction operator.
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Integer/address instructions per iteration outside the updates.
    pub work_int: u32,
    /// Floating-point instructions per iteration outside the updates.
    pub work_fp: u32,
    /// Reduction operator (configures PCLR hardware; decides neutral fill).
    pub op: RedOp,
    /// Embed real contribution values in the trace (needed for value
    /// tracking; a few percent slower to generate).
    pub values: bool,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            work_int: 20,
            work_fp: 8,
            op: RedOp::AddF64,
            values: false,
        }
    }
}

/// Block scheduling: iteration range of processor `p` out of `nprocs`.
pub fn block_range(iters: usize, p: usize, nprocs: usize) -> std::ops::Range<usize> {
    let lo = iters * p / nprocs;
    let hi = iters * (p + 1) / nprocs;
    lo..hi
}

/// Element-block range of processor `p` (merge partitioning and local-write
/// ownership), aligned down to cache-line boundaries so no line is shared
/// between two merging processors.
pub fn elem_block_range(elems: usize, p: usize, nprocs: usize) -> std::ops::Range<usize> {
    let align = |x: usize| x / 8 * 8;
    let lo = if p == 0 { 0 } else { align(elems * p / nprocs) };
    let hi = if p + 1 == nprocs {
        elems
    } else {
        align(elems * (p + 1) / nprocs)
    };
    lo..hi
}

fn val_bits(params: &TraceParams, ref_slot: usize) -> u64 {
    if params.values {
        match params.op {
            RedOp::AddI64 | RedOp::OrI64 => crate::pattern::contribution_i64(ref_slot) as u64,
            _ => contribution(ref_slot).to_bits(),
        }
    } else {
        0
    }
}

/// Common streaming machinery: a refillable buffer of instructions.
struct Buffered<S> {
    buf: VecDeque<Inst>,
    state: S,
}

impl<S> Buffered<S> {
    fn new(state: S) -> Self {
        Buffered {
            buf: VecDeque::with_capacity(64),
            state,
        }
    }
}

// ---------------------------------------------------------------------------
// Sequential baseline
// ---------------------------------------------------------------------------

enum SeqState {
    Start,
    Loop { iter: usize, idx_cursor: u64 },
    Done,
}

/// Sequential trace: direct `load, op, store` on the shared array.
pub struct SeqTrace {
    pat: Arc<AccessPattern>,
    params: TraceParams,
    inner: Buffered<SeqState>,
}

impl SeqTrace {
    /// Build the sequential trace for processor 0.
    pub fn new(pat: Arc<AccessPattern>, params: TraceParams) -> Self {
        SeqTrace {
            pat,
            params,
            inner: Buffered::new(SeqState::Start),
        }
    }
}

impl TraceSource for SeqTrace {
    fn next_inst(&mut self) -> Option<Inst> {
        loop {
            if let Some(i) = self.inner.buf.pop_front() {
                return Some(i);
            }
            match self.inner.state {
                SeqState::Start => {
                    self.inner.buf.push_back(Inst::SetPhase(Phase::Loop));
                    self.inner.state = SeqState::Loop {
                        iter: 0,
                        idx_cursor: 0,
                    };
                }
                SeqState::Loop { iter, idx_cursor } => {
                    if iter >= self.pat.num_iterations() {
                        self.inner.state = SeqState::Done;
                        continue;
                    }
                    let refs = self.pat.refs(iter);
                    let mut cursor = idx_cursor;
                    for k in 0..refs.len().div_ceil(IDX_PER_LINE) {
                        let _ = k;
                        self.inner.buf.push_back(Inst::Load {
                            addr: regions::pattern_stream(0, cursor * 4),
                        });
                        cursor += IDX_PER_LINE as u64;
                    }
                    self.inner.buf.push_back(Inst::Work {
                        ints: self.params.work_int,
                        fps: self.params.work_fp + refs.len() as u32,
                        branches: 0,
                    });
                    for &x in refs {
                        let a = regions::shared_elem(x as u64);
                        self.inner.buf.push_back(Inst::Load { addr: a });
                        self.inner.buf.push_back(Inst::Store { addr: a, val: 0 });
                    }
                    self.inner.state = SeqState::Loop {
                        iter: iter + 1,
                        idx_cursor: cursor,
                    };
                }
                SeqState::Done => return None,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Software (replicated private arrays) scheme
// ---------------------------------------------------------------------------

enum SwState {
    Start,
    Init { next_elem: usize },
    LoopStart,
    Loop { iter: usize, idx_cursor: u64 },
    MergeStart,
    Merge { next_elem: usize },
    Done,
}

/// One processor's trace of the software scheme.
pub struct SwRepTrace {
    pat: Arc<AccessPattern>,
    p: usize,
    nprocs: usize,
    params: TraceParams,
    inner: Buffered<SwState>,
}

impl SwRepTrace {
    /// Build processor `p`'s trace of the Sw scheme over `nprocs`.
    pub fn new(pat: Arc<AccessPattern>, p: usize, nprocs: usize, params: TraceParams) -> Self {
        assert!(p < nprocs);
        SwRepTrace {
            pat,
            p,
            nprocs,
            params,
            inner: Buffered::new(SwState::Start),
        }
    }

    fn private(&self, e: u64) -> Addr {
        regions::private_elem(self.p, e)
    }
}

impl TraceSource for SwRepTrace {
    fn next_inst(&mut self) -> Option<Inst> {
        loop {
            if let Some(i) = self.inner.buf.pop_front() {
                return Some(i);
            }
            match self.inner.state {
                SwState::Start => {
                    self.inner.buf.push_back(Inst::SetPhase(Phase::Init));
                    self.inner.state = SwState::Init { next_elem: 0 };
                }
                SwState::Init { next_elem } => {
                    if next_elem >= self.pat.num_elements {
                        self.inner.state = SwState::LoopStart;
                        continue;
                    }
                    // One line of private-array initialization stores.
                    let hi = (next_elem + 8).min(self.pat.num_elements);
                    for e in next_elem..hi {
                        self.inner.buf.push_back(Inst::Store {
                            addr: self.private(e as u64),
                            val: 0,
                        });
                    }
                    self.inner.state = SwState::Init { next_elem: hi };
                }
                SwState::LoopStart => {
                    self.inner.buf.push_back(Inst::Barrier);
                    self.inner.buf.push_back(Inst::SetPhase(Phase::Loop));
                    let start = block_range(self.pat.num_iterations(), self.p, self.nprocs).start;
                    self.inner.state = SwState::Loop {
                        iter: start,
                        idx_cursor: 0,
                    };
                }
                SwState::Loop { iter, idx_cursor } => {
                    let range = block_range(self.pat.num_iterations(), self.p, self.nprocs);
                    if iter >= range.end {
                        self.inner.state = SwState::MergeStart;
                        continue;
                    }
                    let refs = self.pat.refs(iter);
                    let mut cursor = idx_cursor;
                    for _ in 0..refs.len().div_ceil(IDX_PER_LINE) {
                        self.inner.buf.push_back(Inst::Load {
                            addr: regions::pattern_stream(self.p, cursor * 4),
                        });
                        cursor += IDX_PER_LINE as u64;
                    }
                    self.inner.buf.push_back(Inst::Work {
                        ints: self.params.work_int,
                        fps: self.params.work_fp + refs.len() as u32,
                        branches: 0,
                    });
                    for &x in refs {
                        let a = self.private(x as u64);
                        self.inner.buf.push_back(Inst::Load { addr: a });
                        self.inner.buf.push_back(Inst::Store { addr: a, val: 0 });
                    }
                    self.inner.state = SwState::Loop {
                        iter: iter + 1,
                        idx_cursor: cursor,
                    };
                }
                SwState::MergeStart => {
                    self.inner.buf.push_back(Inst::Barrier);
                    self.inner.buf.push_back(Inst::SetPhase(Phase::Merge));
                    let start = elem_block_range(self.pat.num_elements, self.p, self.nprocs).start;
                    self.inner.state = SwState::Merge { next_elem: start };
                }
                SwState::Merge { next_elem } => {
                    let range = elem_block_range(self.pat.num_elements, self.p, self.nprocs);
                    if next_elem >= range.end {
                        self.inner.buf.push_back(Inst::Barrier);
                        self.inner.state = SwState::Done;
                        continue;
                    }
                    // One shared line: read every processor's partial line,
                    // combine, store to the shared array.
                    let hi = (next_elem + 8).min(range.end);
                    for q in 0..self.nprocs {
                        for e in next_elem..hi {
                            self.inner.buf.push_back(Inst::Load {
                                addr: regions::private_elem(q, e as u64),
                            });
                        }
                    }
                    self.inner.buf.push_back(Inst::Work {
                        ints: 4,
                        fps: ((hi - next_elem) * self.nprocs) as u32,
                        branches: 0,
                    });
                    for e in next_elem..hi {
                        self.inner.buf.push_back(Inst::Store {
                            addr: regions::shared_elem(e as u64),
                            val: 0,
                        });
                    }
                    self.inner.state = SwState::Merge { next_elem: hi };
                }
                SwState::Done => return None,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PCLR scheme
// ---------------------------------------------------------------------------

enum PclrState {
    Start,
    Loop { iter: usize, idx_cursor: u64 },
    FlushStart,
    Done,
}

/// One processor's trace of the PCLR scheme (Figure 5's code shape).
pub struct PclrTrace {
    pat: Arc<AccessPattern>,
    p: usize,
    nprocs: usize,
    params: TraceParams,
    vals: Option<ValueFn>,
    inner: Buffered<PclrState>,
}

impl PclrTrace {
    /// Build processor `p`'s PCLR trace over `nprocs`.
    pub fn new(pat: Arc<AccessPattern>, p: usize, nprocs: usize, params: TraceParams) -> Self {
        assert!(p < nprocs);
        PclrTrace {
            pat,
            p,
            nprocs,
            params,
            vals: None,
            inner: Buffered::new(PclrState::Start),
        }
    }

    /// Build processor `p`'s PCLR trace whose reduction updates carry
    /// `vals(iteration, reference slot)` instead of the built-in
    /// benchmark contribution — the lowering the runtime's PCLR backend
    /// uses to execute arbitrary job bodies on the simulated hardware.
    /// Implies value tracking; pair with a `track_values` machine.
    pub fn with_values(
        pat: Arc<AccessPattern>,
        p: usize,
        nprocs: usize,
        params: TraceParams,
        vals: ValueFn,
    ) -> Self {
        assert!(p < nprocs);
        PclrTrace {
            pat,
            p,
            nprocs,
            params,
            vals: Some(vals),
            inner: Buffered::new(PclrState::Start),
        }
    }
}

impl TraceSource for PclrTrace {
    fn next_inst(&mut self) -> Option<Inst> {
        loop {
            if let Some(i) = self.inner.buf.pop_front() {
                return Some(i);
            }
            match self.inner.state {
                PclrState::Start => {
                    self.inner
                        .buf
                        .push_back(Inst::ConfigPclr { op: self.params.op });
                    self.inner.buf.push_back(Inst::Barrier);
                    self.inner.buf.push_back(Inst::SetPhase(Phase::Loop));
                    let start = block_range(self.pat.num_iterations(), self.p, self.nprocs).start;
                    self.inner.state = PclrState::Loop {
                        iter: start,
                        idx_cursor: 0,
                    };
                }
                PclrState::Loop { iter, idx_cursor } => {
                    let range = block_range(self.pat.num_iterations(), self.p, self.nprocs);
                    if iter >= range.end {
                        self.inner.state = PclrState::FlushStart;
                        continue;
                    }
                    let rr = self.pat.ref_range(iter);
                    let mut cursor = idx_cursor;
                    for _ in 0..rr.len().div_ceil(IDX_PER_LINE) {
                        self.inner.buf.push_back(Inst::Load {
                            addr: regions::pattern_stream(self.p, cursor * 4),
                        });
                        cursor += IDX_PER_LINE as u64;
                    }
                    self.inner.buf.push_back(Inst::Work {
                        ints: self.params.work_int,
                        fps: self.params.work_fp,
                        branches: 0,
                    });
                    for r in rr {
                        let x = self.pat.indices[r];
                        let val = match &self.vals {
                            Some(f) => f(iter, r),
                            None => val_bits(&self.params, r),
                        };
                        self.inner.buf.push_back(Inst::RedUpdate {
                            addr: to_shadow(regions::shared_elem(x as u64)),
                            val,
                        });
                    }
                    self.inner.state = PclrState::Loop {
                        iter: iter + 1,
                        idx_cursor: cursor,
                    };
                }
                PclrState::FlushStart => {
                    self.inner.buf.push_back(Inst::SetPhase(Phase::Merge));
                    self.inner.buf.push_back(Inst::Flush);
                    self.inner.buf.push_back(Inst::Barrier);
                    self.inner.state = PclrState::Done;
                }
                PclrState::Done => return None,
            }
        }
    }
}

/// Build the full trace set for a scheme.
pub fn traces_for(
    scheme: SimScheme,
    pat: &Arc<AccessPattern>,
    nprocs: usize,
    params: TraceParams,
) -> Vec<Box<dyn TraceSource>> {
    match scheme {
        SimScheme::Seq => {
            assert_eq!(nprocs, 1, "sequential runs use a 1-node machine");
            vec![Box::new(SeqTrace::new(pat.clone(), params))]
        }
        SimScheme::Sw => (0..nprocs)
            .map(|p| {
                Box::new(SwRepTrace::new(pat.clone(), p, nprocs, params)) as Box<dyn TraceSource>
            })
            .collect(),
        SimScheme::Pclr => (0..nprocs)
            .map(|p| {
                Box::new(PclrTrace::new(pat.clone(), p, nprocs, params)) as Box<dyn TraceSource>
            })
            .collect(),
    }
}

/// Build the full PCLR trace set whose updates carry values from `vals`
/// (see [`PclrTrace::with_values`]): one trace per processor, iteration
/// blocks partitioned exactly as [`traces_for`] partitions them.
pub fn pclr_traces_with_values(
    pat: &Arc<AccessPattern>,
    nprocs: usize,
    params: TraceParams,
    vals: ValueFn,
) -> Vec<Box<dyn TraceSource>> {
    (0..nprocs)
        .map(|p| {
            Box::new(PclrTrace::with_values(
                pat.clone(),
                p,
                nprocs,
                params,
                vals.clone(),
            )) as Box<dyn TraceSource>
        })
        .collect()
}

/// The three simulated systems of Figure 6 (Hw vs Flex is a machine
/// configuration, not a trace difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimScheme {
    /// Sequential baseline.
    Seq,
    /// Software-only replicated-array reduction.
    Sw,
    /// PCLR reduction accesses (run on a Hw or Flex machine).
    Pclr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Distribution, PatternSpec};

    fn small_pattern() -> Arc<AccessPattern> {
        Arc::new(
            PatternSpec {
                num_elements: 256,
                iterations: 64,
                refs_per_iter: 2,
                coverage: 1.0,
                dist: Distribution::Uniform,
                seed: 1,
            }
            .generate(),
        )
    }

    fn drain(mut t: Box<dyn TraceSource>) -> Vec<Inst> {
        let mut v = Vec::new();
        while let Some(i) = t.next_inst() {
            v.push(i);
        }
        v
    }

    #[test]
    fn seq_trace_covers_all_refs() {
        let pat = small_pattern();
        let insts = drain(Box::new(SeqTrace::new(pat.clone(), TraceParams::default())));
        let stores = insts
            .iter()
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert_eq!(stores, pat.num_references());
        // No PCLR artifacts in the sequential trace.
        assert!(!insts.iter().any(|i| matches!(
            i,
            Inst::RedUpdate { .. } | Inst::Flush | Inst::ConfigPclr { .. }
        )));
    }

    #[test]
    fn sw_traces_partition_iterations_and_elements() {
        let pat = small_pattern();
        let nprocs = 4;
        let mut loop_private_stores = 0usize;
        let mut merge_shared_stores = 0usize;
        let mut init_stores = 0usize;
        for p in 0..nprocs {
            let insts = drain(Box::new(SwRepTrace::new(
                pat.clone(),
                p,
                nprocs,
                TraceParams::default(),
            )));
            let mut phase = Phase::Startup;
            for i in &insts {
                match i {
                    Inst::SetPhase(ph) => phase = *ph,
                    Inst::Store { addr, .. } => match phase {
                        Phase::Init => init_stores += 1,
                        Phase::Loop => {
                            assert!(*addr >= regions::PRIVATE);
                            loop_private_stores += 1;
                        }
                        Phase::Merge => {
                            assert!(*addr < regions::PRIVATE);
                            merge_shared_stores += 1;
                        }
                        _ => panic!("store outside phases"),
                    },
                    _ => {}
                }
            }
        }
        // Init: every processor initializes the full dimension.
        assert_eq!(init_stores, nprocs * pat.num_elements);
        // Loop: references partitioned exactly.
        assert_eq!(loop_private_stores, pat.num_references());
        // Merge: each shared element stored exactly once across processors.
        assert_eq!(merge_shared_stores, pat.num_elements);
    }

    #[test]
    fn pclr_traces_have_no_init_and_flush_once() {
        let pat = small_pattern();
        let nprocs = 4;
        let mut red_updates = 0usize;
        for p in 0..nprocs {
            let insts = drain(Box::new(PclrTrace::new(
                pat.clone(),
                p,
                nprocs,
                TraceParams::default(),
            )));
            assert!(matches!(insts[0], Inst::ConfigPclr { .. }));
            assert_eq!(insts.iter().filter(|i| matches!(i, Inst::Flush)).count(), 1);
            assert!(!insts
                .iter()
                .any(|i| matches!(i, Inst::SetPhase(Phase::Init))));
            red_updates += insts
                .iter()
                .filter(|i| matches!(i, Inst::RedUpdate { .. }))
                .count();
            // All reduction updates go to shadow space.
            for i in &insts {
                if let Inst::RedUpdate { addr, .. } = i {
                    assert!(smartapps_sim::addr::is_shadow(*addr));
                }
            }
        }
        assert_eq!(red_updates, pat.num_references());
    }

    #[test]
    fn block_ranges_partition() {
        for total in [0usize, 1, 7, 64, 1000] {
            for np in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for p in 0..np {
                    let r = block_range(total, p, np);
                    covered += r.len();
                }
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn elem_blocks_are_line_aligned_and_cover() {
        let n = 1003;
        let np = 4;
        let mut covered = 0;
        for p in 0..np {
            let r = elem_block_range(n, p, np);
            if p > 0 {
                assert_eq!(r.start % 8, 0);
            }
            covered += r.len();
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn value_fn_overrides_builtin_contributions() {
        let pat = small_pattern();
        let vals: ValueFn = Arc::new(|i, r| (i as u64) << 32 | r as u64);
        let traces = pclr_traces_with_values(&pat, 4, TraceParams::default(), vals);
        let mut seen = 0usize;
        for (p, t) in traces.into_iter().enumerate() {
            let insts = drain(t);
            let range = block_range(pat.num_iterations(), p, 4);
            let mut expect = range
                .clone()
                .flat_map(|i| pat.ref_range(i).map(move |r| (i, r)));
            for inst in insts {
                if let Inst::RedUpdate { val, .. } = inst {
                    let (i, r) = expect.next().expect("more updates than references");
                    assert_eq!(val, (i as u64) << 32 | r as u64);
                    seen += 1;
                }
            }
            assert!(expect.next().is_none(), "processor {p} dropped updates");
        }
        assert_eq!(seen, pat.num_references());
    }

    #[test]
    fn values_embedded_when_requested() {
        let pat = small_pattern();
        let params = TraceParams {
            values: true,
            ..Default::default()
        };
        let insts = drain(Box::new(PclrTrace::new(pat, 0, 1, params)));
        let nonzero = insts
            .iter()
            .filter(|i| matches!(i, Inst::RedUpdate { val, .. } if *val != 0))
            .count();
        assert!(nonzero > 0, "contributions embedded");
    }
}
