//! # smartapps-workloads — irregular reduction workload generators
//!
//! Regenerates the memory-reference behaviour of the applications the
//! SmartApps paper evaluates — **Irreg, Nbf, Moldyn, Spark98, Charmm,
//! Spice** (Figure 3, software adaptive selection) and **Euler, Equake,
//! Vml, Charmm, Nbf** (Table 2 / Figures 6–7, PCLR hardware) — as seeded
//! synthetic access patterns plus the Section 4 characterization measures
//! (CH, CHD, CHR, CON, MO, SP, DIM).
//!
//! The crate has three layers:
//!
//! * [`pattern`] — the [`pattern::AccessPattern`] CSR representation and
//!   sequential oracles;
//! * [`mesh`] / [`apps`] — generators: generic ([`mesh::PatternSpec`]) and
//!   paper-specific ([`apps::fig3_rows`], [`apps::table2_rows`]);
//! * [`chars`] / [`tracegen`] — consumers: run-time characterization and
//!   lowering to `smartapps-sim` instruction traces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod chars;
pub mod mesh;
pub mod pattern;
pub mod tracegen;

pub use apps::{fig3_rows, table2_rows, AppShape, Fig3Row, Table2Row};
pub use chars::{drift, PatternChars};
pub use mesh::{Distribution, PatternSpec};
pub use pattern::{
    contribution, contribution_i64, sequential_reduce, sequential_reduce_i64, AccessPattern,
};
pub use tracegen::{
    block_range, elem_block_range, pclr_traces_with_values, SimScheme, TraceParams, ValueFn,
};
