//! Seeded generators for irregular access patterns.
//!
//! The paper's applications reference their reduction arrays through
//! meshes, interaction lists and device stamps read from input files.  We
//! regenerate equivalent *reference streams* from seeded RNGs with three
//! controls that determine every characterization measure of Section 4:
//!
//! * `num_elements` (array dimension — DIM), `iterations` and
//!   `refs_per_iter` (MO) fix the reference volume (CHR, CON);
//! * `coverage` restricts references to a subset of elements (SP);
//! * `dist` shapes contention (CH/CHD): uniform, power-law (Zipf), or
//!   spatially clustered like a partitioned mesh.

use crate::pattern::AccessPattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of the reference distribution over the active elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over the active set.
    Uniform,
    /// Zipf with exponent `s`: a few hot elements absorb most references
    /// (high-contention CH tail).
    Zipf {
        /// Power-law exponent; larger = more skewed.
        s: f64,
    },
    /// Spatially clustered: iteration `i` references elements near position
    /// `i * active / iterations`, within a window — models block-partitioned
    /// meshes where consecutive iterations touch nearby nodes.
    Clustered {
        /// Window radius in elements.
        window: u32,
    },
}

/// A complete generator specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSpec {
    /// Reduction array dimension.
    pub num_elements: usize,
    /// Loop iteration count.
    pub iterations: usize,
    /// Reduction references per iteration (the paper's MO when distinct).
    pub refs_per_iter: usize,
    /// Fraction of elements eligible to be referenced (the paper's SP).
    pub coverage: f64,
    /// Contention shape.
    pub dist: Distribution,
    /// RNG seed (patterns are fully deterministic given the spec).
    pub seed: u64,
}

impl PatternSpec {
    /// Generate the access pattern.
    pub fn generate(&self) -> AccessPattern {
        assert!(self.num_elements > 0, "empty reduction array");
        assert!(
            self.coverage > 0.0 && self.coverage <= 1.0,
            "coverage must be in (0,1], got {}",
            self.coverage
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let active = ((self.num_elements as f64 * self.coverage).round() as usize)
            .clamp(1, self.num_elements);
        // The active subset: for uniform/Zipf shapes it is evenly spaced
        // across the array, thinning out cache lines the way sparse codes
        // touch scattered entries; for clustered (mesh) shapes it is a
        // contiguous region, the way renumbered meshes pack their touched
        // nodes.
        let stride = self.num_elements as f64 / active as f64;
        let contiguous = matches!(self.dist, Distribution::Clustered { .. });
        let active_idx = |k: usize| -> u32 {
            if contiguous {
                k.min(self.num_elements - 1) as u32
            } else {
                ((k as f64 * stride) as usize).min(self.num_elements - 1) as u32
            }
        };

        let zipf_cdf = match self.dist {
            Distribution::Zipf { s } => {
                let mut cdf = Vec::with_capacity(active);
                let mut acc = 0.0f64;
                for k in 0..active {
                    acc += 1.0 / ((k + 1) as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for c in &mut cdf {
                    *c /= total;
                }
                Some(cdf)
            }
            _ => None,
        };

        let mut indices = Vec::with_capacity(self.iterations * self.refs_per_iter);
        let mut iter_ptr = Vec::with_capacity(self.iterations + 1);
        iter_ptr.push(0u32);
        for i in 0..self.iterations {
            for _ in 0..self.refs_per_iter {
                let k = match self.dist {
                    Distribution::Uniform => rng.gen_range(0..active),
                    Distribution::Zipf { .. } => {
                        let cdf = zipf_cdf.as_ref().unwrap();
                        let u: f64 = rng.gen();
                        // Hot elements are shuffled across the array by a
                        // multiplicative hash so contention is not spatial.
                        let r = cdf.partition_point(|&c| c < u).min(active - 1);
                        (r.wrapping_mul(0x9E3779B1)) % active
                    }
                    Distribution::Clustered { window } => {
                        let center =
                            (i as u64 * active as u64 / self.iterations.max(1) as u64) as i64;
                        let off = rng.gen_range(-(window as i64)..=window as i64);
                        (center + off).rem_euclid(active as i64) as usize
                    }
                };
                indices.push(active_idx(k));
            }
            iter_ptr.push(indices.len() as u32);
        }
        let pat = AccessPattern {
            num_elements: self.num_elements,
            iter_ptr,
            indices,
        };
        debug_assert!(pat.validate().is_ok());
        pat
    }
}

/// An irregular mesh edge list: `edges` pairs over `nodes` mesh nodes, with
/// geometric locality (each edge connects nodes within `locality` of each
/// other, as renumbered meshes do).  Iterating edges and updating both
/// endpoints is the Irreg/Moldyn/Euler access shape (MO = 2).
pub fn edge_list(nodes: usize, edges: usize, locality: usize, seed: u64) -> AccessPattern {
    assert!(nodes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices = Vec::with_capacity(edges * 2);
    let mut iter_ptr = Vec::with_capacity(edges + 1);
    iter_ptr.push(0u32);
    let loc = locality.max(1);
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let lo = a.saturating_sub(loc);
        let hi = (a + loc).min(nodes - 1);
        let mut b = rng.gen_range(lo..=hi);
        if b == a {
            b = if a < hi { a + 1 } else { lo };
        }
        indices.push(a as u32);
        indices.push(b as u32);
        iter_ptr.push(indices.len() as u32);
    }
    AccessPattern {
        num_elements: nodes,
        iter_ptr,
        indices,
    }
}

/// A sparse matrix in CSR shape for SMVP-style reductions (Equake/Spark98):
/// row `r`'s entries scatter into `y[r]` and symmetric pairs scatter into
/// `y[col]` too.  Returns the pattern of updates to `y` per nonzero-block
/// iteration.
pub fn smvp_pattern(rows: usize, nnz_per_row: usize, bandwidth: usize, seed: u64) -> AccessPattern {
    assert!(rows >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(rows);
    for r in 0..rows {
        // Symmetric SMVP: visiting row r updates y[r] (accumulated across
        // its nonzeros) and y[c] for each off-diagonal nonzero c < r.
        let mut refs = Vec::with_capacity(nnz_per_row + 1);
        refs.push(r as u32);
        for _ in 0..nnz_per_row.saturating_sub(1) {
            let lo = r.saturating_sub(bandwidth);
            let c = rng.gen_range(lo..=r);
            refs.push(c as u32);
        }
        lists.push(refs);
    }
    AccessPattern::from_iters(rows, &lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::PatternChars;

    #[test]
    fn spec_generates_requested_shape() {
        let spec = PatternSpec {
            num_elements: 1000,
            iterations: 500,
            refs_per_iter: 2,
            coverage: 0.5,
            dist: Distribution::Uniform,
            seed: 42,
        };
        let p = spec.generate();
        assert_eq!(p.num_iterations(), 500);
        assert_eq!(p.num_references(), 1000);
        let c = PatternChars::measure(&p);
        // Coverage bounds the referenced fraction.
        assert!(c.sp <= 0.5 + 1e-9, "sp = {}", c.sp);
        assert!(c.sp > 0.3, "should reference most of the active half");
        assert!((c.mo - 2.0).abs() < 0.1);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PatternSpec {
            num_elements: 100,
            iterations: 50,
            refs_per_iter: 3,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 7,
        };
        assert_eq!(spec.generate(), spec.generate());
        let other = PatternSpec { seed: 8, ..spec };
        assert_ne!(other.generate(), spec.generate());
    }

    #[test]
    fn zipf_concentrates_references() {
        let mk = |dist| {
            PatternSpec {
                num_elements: 1000,
                iterations: 5000,
                refs_per_iter: 1,
                coverage: 1.0,
                dist,
                seed: 3,
            }
            .generate()
        };
        let uz = PatternChars::measure(&mk(Distribution::Uniform));
        let zf = PatternChars::measure(&mk(Distribution::Zipf { s: 1.2 }));
        assert!(
            zf.max_refs_per_element > 4 * uz.max_refs_per_element,
            "zipf max {} should dwarf uniform max {}",
            zf.max_refs_per_element,
            uz.max_refs_per_element
        );
        assert!(zf.distinct < uz.distinct);
    }

    #[test]
    fn clustered_stays_in_window() {
        let spec = PatternSpec {
            num_elements: 10_000,
            iterations: 1000,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Clustered { window: 16 },
            seed: 9,
        };
        let p = spec.generate();
        // Iteration i's references lie near i * N / iters.
        for i in [0usize, 250, 500, 999] {
            let center = (i * 10_000 / 1000) as i64;
            for &x in p.refs(i) {
                let d = (x as i64 - center).abs();
                assert!(d <= 17 || d >= 10_000 - 17, "iter {i}: {x} vs {center}");
            }
        }
    }

    #[test]
    fn edge_list_shape() {
        let p = edge_list(500, 2000, 10, 1);
        assert_eq!(p.num_iterations(), 2000);
        assert_eq!(p.num_references(), 4000);
        let c = PatternChars::measure(&p);
        assert!(
            (c.mo - 2.0).abs() < 0.05,
            "edges update two distinct endpoints"
        );
        // Locality: endpoints within 10 of each other.
        for i in 0..p.num_iterations() {
            let r = p.refs(i);
            assert!((r[0] as i64 - r[1] as i64).abs() <= 10);
        }
    }

    #[test]
    fn smvp_updates_own_row_and_neighbors() {
        let p = smvp_pattern(300, 5, 20, 4);
        assert_eq!(p.num_iterations(), 300);
        for r in 0..300 {
            let refs = p.refs(r);
            assert_eq!(refs[0], r as u32);
            for &c in &refs[1..] {
                assert!(c as usize <= r && r - c as usize <= 20);
            }
        }
    }

    #[test]
    fn coverage_thins_distinct_elements() {
        let mk = |cov| {
            let p = PatternSpec {
                num_elements: 10_000,
                iterations: 20_000,
                refs_per_iter: 1,
                coverage: cov,
                dist: Distribution::Uniform,
                seed: 5,
            }
            .generate();
            PatternChars::measure(&p).distinct
        };
        let full = mk(1.0);
        let tenth = mk(0.1);
        assert!(
            tenth < full / 5,
            "coverage 0.1 -> far fewer distinct: {tenth} vs {full}"
        );
        assert!(tenth <= 1000);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn zero_coverage_rejected() {
        PatternSpec {
            num_elements: 10,
            iterations: 1,
            refs_per_iter: 1,
            coverage: 0.0,
            dist: Distribution::Uniform,
            seed: 0,
        }
        .generate();
    }
}
