//! Access patterns: the per-iteration reduction-array index streams that
//! drive both the software reduction library and the simulator traces.
//!
//! A pattern is stored in CSR form: `iter_ptr[i]..iter_ptr[i+1]` indexes
//! the slice of `indices` referenced by iteration `i`.  Together with the
//! per-reference contribution function this fully determines a reduction
//! loop `for i { for r in refs(i) { w[idx[r]] op= f(i, r) } }`.

use serde::{Deserialize, Serialize};

/// A reduction loop's memory access pattern in CSR form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPattern {
    /// Number of elements in the reduction array (its dimension).
    pub num_elements: usize,
    /// CSR row pointers: `iter_ptr.len() == num_iterations + 1`.
    pub iter_ptr: Vec<u32>,
    /// Flattened per-iteration element indices.
    pub indices: Vec<u32>,
}

impl AccessPattern {
    /// Build from per-iteration index lists.
    pub fn from_iters(num_elements: usize, iters: &[Vec<u32>]) -> Self {
        let mut iter_ptr = Vec::with_capacity(iters.len() + 1);
        let mut indices = Vec::with_capacity(iters.iter().map(Vec::len).sum());
        iter_ptr.push(0u32);
        for it in iters {
            for &x in it {
                assert!((x as usize) < num_elements, "index {x} out of bounds");
                indices.push(x);
            }
            iter_ptr.push(indices.len() as u32);
        }
        AccessPattern {
            num_elements,
            iter_ptr,
            indices,
        }
    }

    /// Number of iterations.
    #[inline]
    pub fn num_iterations(&self) -> usize {
        self.iter_ptr.len() - 1
    }

    /// Total number of reduction references.
    #[inline]
    pub fn num_references(&self) -> usize {
        self.indices.len()
    }

    /// The element indices referenced by iteration `i`.
    #[inline]
    pub fn refs(&self, i: usize) -> &[u32] {
        &self.indices[self.iter_ptr[i] as usize..self.iter_ptr[i + 1] as usize]
    }

    /// Global reference positions of iteration `i` (for contribution
    /// functions keyed by reference slot).
    #[inline]
    pub fn ref_range(&self, i: usize) -> std::ops::Range<usize> {
        self.iter_ptr[i] as usize..self.iter_ptr[i + 1] as usize
    }

    /// Iterate `(iteration, reference slot, element index)` triples.
    pub fn iter_refs(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        (0..self.num_iterations())
            .flat_map(move |i| self.ref_range(i).map(move |r| (i, r, self.indices[r])))
    }

    /// Number of distinct elements referenced.
    pub fn distinct_elements(&self) -> usize {
        let mut seen = vec![false; self.num_elements];
        let mut n = 0;
        for &x in &self.indices {
            if !seen[x as usize] {
                seen[x as usize] = true;
                n += 1;
            }
        }
        n
    }

    /// Restrict the pattern to the first `n` iterations (used to scale
    /// simulations down while keeping the array dimension).
    pub fn truncate_iterations(&self, n: usize) -> AccessPattern {
        let n = n.min(self.num_iterations());
        let end = self.iter_ptr[n] as usize;
        AccessPattern {
            num_elements: self.num_elements,
            iter_ptr: self.iter_ptr[..=n].to_vec(),
            indices: self.indices[..end].to_vec(),
        }
    }

    /// Verify internal consistency (monotone row pointers, bounds).
    pub fn validate(&self) -> Result<(), String> {
        if self.iter_ptr.is_empty() {
            return Err("iter_ptr must have at least one entry".into());
        }
        if self.iter_ptr[0] != 0 {
            return Err("iter_ptr must start at 0".into());
        }
        if *self.iter_ptr.last().unwrap() as usize != self.indices.len() {
            return Err("iter_ptr must end at indices.len()".into());
        }
        if self.iter_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("iter_ptr must be nondecreasing".into());
        }
        if let Some(&bad) = self
            .indices
            .iter()
            .find(|&&x| x as usize >= self.num_elements)
        {
            return Err(format!("index {bad} out of bounds ({})", self.num_elements));
        }
        Ok(())
    }
}

/// The per-reference contribution: a cheap deterministic function of the
/// global reference slot, so every scheme (and the sequential oracle)
/// computes identical update values.
#[inline]
pub fn contribution(ref_slot: usize) -> f64 {
    // A few arithmetic ops — representative of the flops surrounding a
    // reduction update, and exactly reproducible.
    let x = (ref_slot as u32).wrapping_mul(2654435761) >> 8;
    (x & 0xffff) as f64 * (1.0 / 65536.0) + 0.25
}

/// Integer contribution variant for exactness-sensitive tests.
#[inline]
pub fn contribution_i64(ref_slot: usize) -> i64 {
    ((ref_slot as u32).wrapping_mul(2654435761) >> 16) as i64 + 1
}

/// Sequential oracle: apply the whole pattern to a fresh array.
pub fn sequential_reduce(pat: &AccessPattern) -> Vec<f64> {
    let mut w = vec![0.0f64; pat.num_elements];
    for (_, r, x) in pat.iter_refs() {
        w[x as usize] += contribution(r);
    }
    w
}

/// Sequential oracle with integer contributions (exact equality checks).
pub fn sequential_reduce_i64(pat: &AccessPattern) -> Vec<i64> {
    let mut w = vec![0i64; pat.num_elements];
    for (_, r, x) in pat.iter_refs() {
        w[x as usize] += contribution_i64(r);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessPattern {
        AccessPattern::from_iters(6, &[vec![0, 1], vec![2], vec![], vec![5, 5, 0]])
    }

    #[test]
    fn csr_construction_and_accessors() {
        let p = sample();
        assert_eq!(p.num_iterations(), 4);
        assert_eq!(p.num_references(), 6);
        assert_eq!(p.refs(0), &[0, 1]);
        assert_eq!(p.refs(1), &[2]);
        assert_eq!(p.refs(2), &[] as &[u32]);
        assert_eq!(p.refs(3), &[5, 5, 0]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn iter_refs_covers_all() {
        let p = sample();
        let v: Vec<(usize, usize, u32)> = p.iter_refs().collect();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], (0, 0, 0));
        assert_eq!(v[5], (3, 5, 0));
    }

    #[test]
    fn distinct_elements_counts_once() {
        let p = sample();
        assert_eq!(p.distinct_elements(), 4); // {0,1,2,5}
    }

    #[test]
    fn truncate_keeps_prefix() {
        let p = sample();
        let q = p.truncate_iterations(2);
        assert_eq!(q.num_iterations(), 2);
        assert_eq!(q.num_references(), 3);
        assert_eq!(q.num_elements, 6);
        assert!(q.validate().is_ok());
        // Truncating beyond length is a no-op.
        assert_eq!(p.truncate_iterations(99), p);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        AccessPattern::from_iters(2, &[vec![2]]);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut p = sample();
        p.iter_ptr[1] = 99;
        assert!(p.validate().is_err());
        let mut p = sample();
        p.indices[0] = 100;
        assert!(p.validate().is_err());
        let mut p = sample();
        p.iter_ptr[0] = 1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn contribution_is_deterministic_and_bounded() {
        for r in 0..1000 {
            let c = contribution(r);
            assert!((0.25..1.25).contains(&c), "slot {r} -> {c}");
            assert_eq!(c, contribution(r));
        }
        assert!(contribution_i64(0) >= 1);
    }

    #[test]
    fn sequential_oracles_agree_on_structure() {
        let p = sample();
        let w = sequential_reduce(&p);
        assert_eq!(w.len(), 6);
        assert_eq!(w[3], 0.0); // element 3 never referenced
        assert!(w[0] > 0.0); // referenced twice
        let wi = sequential_reduce_i64(&p);
        assert_eq!(wi[3], 0);
        assert!(wi[5] > 0); // referenced twice
    }
}
