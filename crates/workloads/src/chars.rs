//! Memory-reference characterization measures of Section 4.
//!
//! The paper defines, for the reduction-array references of a loop:
//!
//! * **CH** — a histogram showing the number of elements referenced by a
//!   certain number of iterations;
//! * **CHD** — the CH distribution (CH normalized by referenced elements);
//! * **CHR** — the ratio of the total number of references (the sum of the
//!   CH histogram) to the space needed for allocating replicated arrays
//!   across processors;
//! * **CON** (connectivity) — the ratio between the number of iterations
//!   and the number of distinct memory elements referenced by the loop;
//! * **MO** (mobility) — proportional to the number of distinct elements
//!   that an iteration references;
//! * **SP** (sparsity) — the ratio of referenced elements to the dimension
//!   of the array;
//! * **DIM** — the ratio between the reduction array dimension and the
//!   cache size.
//!
//! These are computed here from an [`AccessPattern`] — the same computation
//! the run-time inspector performs in `smartapps-reductions::inspect`.

use crate::pattern::AccessPattern;
use serde::{Deserialize, Serialize};

/// Measured reference characteristics of a reduction loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternChars {
    /// Reduction array dimension (number of elements).
    pub num_elements: usize,
    /// Loop iteration count.
    pub iterations: usize,
    /// Total reduction references.
    pub references: usize,
    /// Distinct elements referenced.
    pub distinct: usize,
    /// Distinct cache lines (8-element groups) touched — the spatial
    /// density the `ll` scheme's touched-line merge depends on.
    pub distinct_lines: usize,
    /// MO: mean distinct elements referenced per iteration.
    pub mo: f64,
    /// CON: iterations / distinct elements.
    pub con: f64,
    /// SP: distinct / dimension (fraction between 0 and 1).
    pub sp: f64,
    /// CH histogram: `ch[k]` = number of elements referenced by exactly
    /// `k+1` references (elements with zero references are excluded;
    /// the tail is clamped into the last bucket).
    pub ch: Vec<usize>,
    /// Maximum references to any single element (contention proxy).
    pub max_refs_per_element: usize,
}

/// Number of CH buckets kept (reference counts 1..=CH_BUCKETS, last bucket
/// clamps the tail).
pub const CH_BUCKETS: usize = 64;

impl PatternChars {
    /// Characterize a pattern (one full inspector pass).
    pub fn measure(pat: &AccessPattern) -> Self {
        let mut per_elem = vec![0u32; pat.num_elements];
        for &x in &pat.indices {
            per_elem[x as usize] += 1;
        }
        let distinct = per_elem.iter().filter(|&&c| c > 0).count();
        let distinct_lines = per_elem
            .chunks(8)
            .filter(|ch| ch.iter().any(|&c| c > 0))
            .count();
        let mut ch = vec![0usize; CH_BUCKETS];
        let mut max_refs = 0usize;
        for &c in &per_elem {
            if c > 0 {
                let b = (c as usize - 1).min(CH_BUCKETS - 1);
                ch[b] += 1;
                max_refs = max_refs.max(c as usize);
            }
        }
        // MO: average distinct elements per iteration.
        let iters = pat.num_iterations();
        let mut mo_sum = 0usize;
        let mut scratch: Vec<u32> = Vec::new();
        for i in 0..iters {
            let refs = pat.refs(i);
            if refs.len() <= 1 {
                mo_sum += refs.len();
            } else {
                scratch.clear();
                scratch.extend_from_slice(refs);
                scratch.sort_unstable();
                scratch.dedup();
                mo_sum += scratch.len();
            }
        }
        PatternChars {
            num_elements: pat.num_elements,
            iterations: iters,
            references: pat.num_references(),
            distinct,
            distinct_lines,
            mo: if iters > 0 {
                mo_sum as f64 / iters as f64
            } else {
                0.0
            },
            con: if distinct > 0 {
                iters as f64 / distinct as f64
            } else {
                0.0
            },
            sp: if pat.num_elements > 0 {
                distinct as f64 / pat.num_elements as f64
            } else {
                0.0
            },
            ch,
            max_refs_per_element: max_refs,
        }
    }

    /// CHD: the CH histogram normalized to a distribution over referenced
    /// elements.
    pub fn chd(&self) -> Vec<f64> {
        let total: usize = self.ch.iter().sum();
        if total == 0 {
            return vec![0.0; self.ch.len()];
        }
        self.ch.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// CHR for `p` processors: total references / (p × dimension) — how
    /// well the references amortize fully replicated private arrays.
    pub fn chr(&self, p: usize) -> f64 {
        if self.num_elements == 0 || p == 0 {
            return 0.0;
        }
        self.references as f64 / (p as f64 * self.num_elements as f64)
    }

    /// DIM for a cache of `cache_bytes`: array footprint / cache size
    /// (8-byte elements).
    pub fn dim(&self, cache_bytes: usize) -> f64 {
        if cache_bytes == 0 {
            return f64::INFINITY;
        }
        (self.num_elements * 8) as f64 / cache_bytes as f64
    }

    /// Reduction array footprint in KB (Table 2's "Red. Array Size").
    pub fn array_kb(&self) -> f64 {
        (self.num_elements * 8) as f64 / 1024.0
    }

    /// The number of (hottest-first) elements needed to cover `mass`
    /// fraction of all references, estimated from the CH histogram.  Under
    /// a contention tail (Zipf-like CHD) this is far below `distinct` —
    /// the working set that actually matters for access-ordered storage
    /// like the `hash` scheme's accumulation tables.
    pub fn effective_distinct(&self, mass: f64) -> usize {
        if self.references == 0 {
            return 0;
        }
        let target = self.references as f64 * mass.clamp(0.0, 1.0);
        let mut covered = 0.0;
        let mut elems = 0usize;
        // Walk buckets hottest-first; the clamped tail bucket is weighted
        // by the observed maximum.
        for (b, &count) in self.ch.iter().enumerate().rev() {
            if count == 0 {
                continue;
            }
            let k = if b + 1 == CH_BUCKETS {
                self.max_refs_per_element as f64
            } else {
                (b + 1) as f64
            };
            let bucket_mass = count as f64 * k;
            if covered + bucket_mass >= target {
                let need = ((target - covered) / k).ceil() as usize;
                return elems + need.min(count);
            }
            covered += bucket_mass;
            elems += count;
        }
        elems
    }

    /// HCHR: the fraction of references that fall on *high-contention*
    /// elements ("the set of CHRs which have a high degree of contention is
    /// referred to as HCHR").  An element is high-contention when it
    /// absorbs at least `threshold` times the mean references-per-
    /// referenced-element.
    pub fn hchr(&self, threshold: f64) -> f64 {
        if self.references == 0 || self.distinct == 0 {
            return 0.0;
        }
        let mean = self.references as f64 / self.distinct as f64;
        let cutoff = mean * threshold;
        // Approximate per-bucket reference mass from the CH histogram
        // (bucket k holds elements with k+1 references; the clamped tail
        // bucket uses the observed maximum as its count).
        let mut hot_refs = 0.0;
        for (b, &count) in self.ch.iter().enumerate() {
            let k = if b + 1 == CH_BUCKETS {
                self.max_refs_per_element as f64
            } else {
                (b + 1) as f64
            };
            if k >= cutoff {
                hot_refs += count as f64 * k;
            }
        }
        (hot_refs / self.references as f64).min(1.0)
    }
}

/// Drift between two characterizations, used by the adaptive runtime to
/// decide when a dynamic code's pattern changed enough to warrant
/// re-characterization ("when the changes are significant enough (a
/// threshold that is tested at run-time) then a re-characterization of the
/// reference pattern is needed").
pub fn drift(a: &PatternChars, b: &PatternChars) -> f64 {
    fn rel(x: f64, y: f64) -> f64 {
        let m = x.abs().max(y.abs());
        if m == 0.0 {
            0.0
        } else {
            (x - y).abs() / m
        }
    }
    rel(a.mo, b.mo)
        .max(rel(a.con, b.con))
        .max(rel(a.sp, b.sp))
        .max(rel(a.references as f64, b.references as f64))
        .max(rel(a.distinct as f64, b.distinct as f64))
        .max(rel(a.distinct_lines as f64, b.distinct_lines as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessPattern;

    fn uniform_pattern(elems: usize, iters: usize, per_iter: usize) -> AccessPattern {
        let lists: Vec<Vec<u32>> = (0..iters)
            .map(|i| {
                (0..per_iter)
                    .map(|k| ((i * per_iter + k) % elems) as u32)
                    .collect()
            })
            .collect();
        AccessPattern::from_iters(elems, &lists)
    }

    #[test]
    fn measures_of_uniform_pattern() {
        // 100 elements, 50 iterations x 2 refs = 100 refs covering all.
        let p = uniform_pattern(100, 50, 2);
        let c = PatternChars::measure(&p);
        assert_eq!(c.references, 100);
        assert_eq!(c.distinct, 100);
        assert_eq!(c.distinct_lines, 13); // ceil(100/8)
        assert!((c.mo - 2.0).abs() < 1e-12);
        assert!((c.con - 0.5).abs() < 1e-12);
        assert!((c.sp - 1.0).abs() < 1e-12);
        assert_eq!(c.max_refs_per_element, 1);
        // All referenced exactly once: CH bucket 0 holds everything.
        assert_eq!(c.ch[0], 100);
        assert!((c.chd()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chr_definition() {
        let p = uniform_pattern(100, 200, 2); // 400 refs
        let c = PatternChars::measure(&p);
        assert!((c.chr(8) - 400.0 / 800.0).abs() < 1e-12);
        assert!((c.chr(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dim_and_array_kb() {
        let p = uniform_pattern(1024, 1, 1);
        let c = PatternChars::measure(&p);
        assert!((c.array_kb() - 8.0).abs() < 1e-12); // 1024 * 8 B = 8 KB
        assert!((c.dim(8192) - 1.0).abs() < 1e-12);
        assert!(c.dim(4096) > 1.0);
    }

    #[test]
    fn mo_counts_distinct_not_total() {
        // One iteration referencing the same element 5 times: MO = 1.
        let p = AccessPattern::from_iters(4, &[vec![2, 2, 2, 2, 2]]);
        let c = PatternChars::measure(&p);
        assert!((c.mo - 1.0).abs() < 1e-12);
        assert_eq!(c.references, 5);
        assert_eq!(c.max_refs_per_element, 5);
        // CH: one element with 5 refs -> bucket 4.
        assert_eq!(c.ch[4], 1);
    }

    #[test]
    fn ch_tail_clamps() {
        let refs: Vec<u32> = vec![0; CH_BUCKETS + 10];
        let p = AccessPattern::from_iters(1, &[refs]);
        let c = PatternChars::measure(&p);
        assert_eq!(c.ch[CH_BUCKETS - 1], 1);
        assert_eq!(c.max_refs_per_element, CH_BUCKETS + 10);
    }

    #[test]
    fn effective_distinct_collapses_under_hot_tails() {
        // Uniform single-reference: covering 90% of refs needs ~90% of
        // the elements.
        let p = uniform_pattern(100, 50, 2);
        let c = PatternChars::measure(&p);
        let e = c.effective_distinct(0.9);
        assert!((85..=95).contains(&e), "uniform: {e}");
        assert_eq!(c.effective_distinct(1.0), 100);
        // One element with 200 refs + 40 singles: 90% of 240 refs = 216,
        // covered by the hot element plus 16 singles.
        let mut lists = vec![vec![0u32; 5]; 40];
        lists.extend((1..41u32).map(|e| vec![e]));
        let p = AccessPattern::from_iters(64, &lists);
        let c = PatternChars::measure(&p);
        let e = c.effective_distinct(0.9);
        assert!(e <= 20, "hot tail must collapse the working set: {e}");
        // Degenerate cases.
        let c = PatternChars::measure(&AccessPattern::from_iters(4, &[]));
        assert_eq!(c.effective_distinct(0.9), 0);
    }

    #[test]
    fn hchr_flags_contention_tails() {
        // Uniform single-reference pattern: nothing is hot.
        let p = uniform_pattern(100, 50, 2);
        let c = PatternChars::measure(&p);
        assert_eq!(c.hchr(2.0), 0.0);
        // One element absorbing most references is hot.
        let mut lists = vec![vec![0u32; 5]; 40]; // element 0: 200 refs
        lists.extend((1..41u32).map(|e| vec![e])); // 40 cold elements
        let p = AccessPattern::from_iters(64, &lists);
        let c = PatternChars::measure(&p);
        let h = c.hchr(2.0);
        assert!(h > 0.7, "element 0 holds 200/240 refs: hchr {h}");
        assert!(h <= 1.0);
        // Empty pattern is safe.
        let c = PatternChars::measure(&AccessPattern::from_iters(4, &[]));
        assert_eq!(c.hchr(2.0), 0.0);
    }

    #[test]
    fn drift_detects_changes() {
        let a = PatternChars::measure(&uniform_pattern(100, 50, 2));
        let b = PatternChars::measure(&uniform_pattern(100, 50, 2));
        assert_eq!(drift(&a, &b), 0.0);
        let c = PatternChars::measure(&uniform_pattern(100, 200, 2));
        assert!(drift(&a, &c) > 0.5, "4x iterations is a large drift");
    }

    #[test]
    fn empty_pattern_is_safe() {
        let p = AccessPattern::from_iters(10, &[]);
        let c = PatternChars::measure(&p);
        assert_eq!(c.references, 0);
        assert_eq!(c.distinct, 0);
        assert_eq!(c.mo, 0.0);
        assert_eq!(c.con, 0.0);
        assert_eq!(c.chd().iter().sum::<f64>(), 0.0);
    }
}
