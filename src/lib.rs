//! # SmartApps — an application-centric approach to high performance
//! computing, in Rust
//!
//! A reproduction of *"SmartApps, an Application Centric Approach to High
//! Performance Computing: Compiler-Assisted Software and Hardware Support
//! for Reduction Operations"* (Dang, Garzarán, Prvulovic, Zhang, Jula, Yu,
//! Amato, Rauchwerger, Torrellas — IPPS/IPDPS 2002).
//!
//! This facade crate re-exports the workspace's five libraries:
//!
//! * [`core`] (`smartapps-core`) — the adaptive runtime: reduction
//!   recognition, multi-version dispatch, the performance ToolBox and the
//!   monitor/adapt feedback loop;
//! * [`reductions`] (`smartapps-reductions`) — the parallel reduction
//!   algorithm library (`rep`, `ll`, `sel`, `lw`, `hash`), the run-time
//!   inspector and the decision model (Section 4 / Figure 3);
//! * [`specpar`] (`smartapps-specpar`) — speculative parallelization: the
//!   LRPD and Recursive LRPD tests, wavefront inspector/executor,
//!   WHILE-loop parallelization and feedback-guided blocked scheduling
//!   (Section 3);
//! * [`sim`] (`smartapps-sim`) — the execution-driven CC-NUMA simulator
//!   with the PCLR hardware reduction extension (Sections 5–6, Tables 1–2,
//!   Figures 6–7);
//! * [`workloads`] (`smartapps-workloads`) — generators reproducing the
//!   paper's application reference patterns and their characterization
//!   measures (CH, CHD, CHR, CON, MO, SP, DIM).
//!
//! ## Quickstart
//!
//! ```
//! use smartapps::prelude::*;
//!
//! // An irregular histogram-style reduction over a mesh edge list.
//! let pattern = smartapps::workloads::apps::irreg_mesh(10_000, 40_000, 42);
//!
//! // Let the SmartApp runtime characterize it and pick the best scheme.
//! let mut smart = AdaptiveReduction::new(0, 4, true);
//! let (forces, log) = smart.execute(&pattern, &|_i, r| contribution(r));
//!
//! assert_eq!(forces.len(), 10_000);
//! println!("runtime chose {} ({} refs)", log.scheme, pattern.num_references());
//! ```
//!
//! ## Runtime service
//!
//! The library calls above spawn threads per invocation and forget
//! everything at process exit.  [`runtime`] (`smartapps-runtime`) is the
//! continuously-running service shape of the same feedback loop:
//!
//! * a **persistent worker pool** keeps SPMD workers parked between
//!   invocations, so repeated reductions pay zero thread-creation cost;
//! * a **sharded job queue** accepts [`Runtime::submit`] /
//!   `submit_batch` traffic from many client threads and coalesces jobs
//!   with the same pattern signature into one scheme decision;
//! * a **cross-run profile store** persists signature → scheme +
//!   calibration to disk at shutdown, so a restarted service skips full
//!   inspection for workloads it has already learned;
//! * a **completion-driven frontend** (`Runtime::submit_tagged` + a
//!   shared `CompletionSet`) multiplexes thousands of in-flight jobs
//!   onto one consumer thread, which [`server`] (`smartapps-server`)
//!   turns into a TCP network service: an acceptor plus a fixed reactor
//!   set serve any number of clients — no thread per client anywhere
//!   (see `docs/SERVER.md` and the `netload` loadgen).
//!
//! ```
//! use smartapps::prelude::*;
//! use std::sync::Arc;
//!
//! let rt = Runtime::with_workers(4);
//! let pattern = Arc::new(smartapps::workloads::apps::irreg_mesh(10_000, 40_000, 42));
//! let first = rt.run(JobSpec::f64(pattern.clone(), |_i, r| contribution(r)));
//! let again = rt.run(JobSpec::f64(pattern, |_i, r| contribution(r)));
//! assert!(again.profile_hit); // decision reused, no second inspection
//! assert_eq!(first.output.len(), 10_000);
//! ```
//!
//! [`Runtime::submit`]: smartapps_runtime::Runtime::submit

pub use smartapps_core as core;
pub use smartapps_reductions as reductions;
pub use smartapps_runtime as runtime;
pub use smartapps_server as server;
pub use smartapps_sim as sim;
pub use smartapps_specpar as specpar;
pub use smartapps_workloads as workloads;

/// Common imports for applications built on SmartApps.
pub mod prelude {
    pub use smartapps_core::adaptive::{AdaptiveReduction, InvocationLog};
    pub use smartapps_core::multiversion::{CompiledReduction, Inputs};
    pub use smartapps_core::toolbox::{Adaptation, Optimizer, PerformanceDb, Predictor};
    pub use smartapps_reductions::{
        rank_schemes, run_scheme, run_scheme_on, DecisionModel, Inspector, ModelInput, Scheme,
        SpawnExecutor, SpmdExecutor,
    };
    pub use smartapps_runtime::{
        JobHandle, JobResult, JobSpec, ProfileStore, Runtime, RuntimeConfig, WorkerPool,
    };
    pub use smartapps_specpar::{lrpd_execute, rlrpd_execute, FgbsScheduler, SpecAccess};
    pub use smartapps_workloads::{
        contribution, AccessPattern, Distribution, PatternChars, PatternSpec,
    };
}
