//! End-to-end PCLR offload: a runtime configured with the hardware
//! backend routes workload classes to the simulated machine, returns
//! oracle-correct results, surfaces the offload in [`StatsSnapshot`],
//! and the backend choice survives a profile-store save/restart round
//! trip — the full acceptance path for the execution-backend seam.
//!
//! [`StatsSnapshot`]: smartapps::runtime::StatsSnapshot

use smartapps::reductions::{DecisionModel, ModelParams, Scheme};
use smartapps::runtime::{JobSpec, PclrConfig, Runtime, RuntimeConfig};
use smartapps::workloads::pattern::{sequential_reduce, sequential_reduce_i64};
use smartapps::workloads::{
    contribution, contribution_i64, AccessPattern, Distribution, PatternSpec,
};
use std::sync::Arc;

/// A model whose PCLR formula is free of overheads, so every admitted
/// class deterministically decides onto the hardware backend (production
/// calibrations make this a per-class competition; tests pin it).
fn free_offload_model() -> DecisionModel {
    DecisionModel::new(ModelParams {
        pclr_update: 0.0,
        pclr_flush_line: 0.0,
        pclr_offload_fixed: 0.0,
        ..ModelParams::default()
    })
}

fn sim_pattern(seed: u64) -> Arc<AccessPattern> {
    Arc::new(
        PatternSpec {
            num_elements: 384,
            iterations: 400,
            refs_per_iter: 2,
            coverage: 0.9,
            dist: Distribution::Uniform,
            seed,
        }
        .generate(),
    )
}

fn offload_config(profile_path: Option<std::path::PathBuf>) -> RuntimeConfig {
    RuntimeConfig {
        workers: 2,
        dispatchers: 1,
        profile_path,
        pclr: Some(PclrConfig::default()),
        model: free_offload_model(),
        ..RuntimeConfig::default()
    }
}

#[test]
fn offload_enabled_runtime_routes_classes_to_the_simulator() {
    let rt = Runtime::new(offload_config(None));
    // Two distinct classes, both flavors, all routed to the machine.
    let pat_a = sim_pattern(31);
    let pat_b = sim_pattern(33);
    let ra = rt.run(JobSpec::i64(pat_a.clone(), |_i, r| contribution_i64(r)));
    assert!(ra.error.is_none(), "{:?}", ra.error);
    assert_eq!(ra.scheme, Scheme::Pclr);
    assert_eq!(ra.output.as_i64().unwrap(), sequential_reduce_i64(&pat_a));
    assert!(ra.sim_cycles.unwrap() > 0);

    let rb = rt.run(JobSpec::f64(pat_b.clone(), |_i, r| contribution(r)));
    assert!(rb.error.is_none());
    assert_eq!(rb.scheme, Scheme::Pclr);
    let oracle = sequential_reduce(&pat_b);
    for (a, b) in oracle.iter().zip(rb.output.as_f64().unwrap()) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    // The offloads are visible in the service counters.
    let stats = rt.stats();
    assert_eq!(stats.pclr_offloads, 2);
    assert_eq!(
        stats.sim_cycles,
        ra.sim_cycles.unwrap() + rb.sim_cycles.unwrap()
    );
    assert_eq!(stats.completed, 2);
}

#[test]
fn software_only_runtime_never_touches_the_simulator() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        model: free_offload_model(), // free pclr, but no backend
        ..RuntimeConfig::default()
    });
    let pat = sim_pattern(35);
    let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
    assert!(r.error.is_none());
    assert!(r.scheme.is_software());
    assert!(r.sim_cycles.is_none());
    assert_eq!(rt.stats().pclr_offloads, 0);
}

#[test]
fn backend_choice_survives_profile_save_and_restart() {
    let dir = std::env::temp_dir().join("smartapps-offload-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("offload-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let pat = sim_pattern(37);
    let oracle = sequential_reduce_i64(&pat);

    // First process: learn the class onto the hardware backend.
    {
        let rt = Runtime::new(offload_config(Some(path.clone())));
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert_eq!(r.scheme, Scheme::Pclr);
        assert!(!r.profile_hit, "first sighting decides via the model");
        rt.shutdown();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains(" pclr "),
        "persisted store must carry the hardware record:\n{text}"
    );

    // Second process: the profile store alone routes the class — no
    // model decision, no inspection.
    {
        let rt = Runtime::new(offload_config(Some(path.clone())));
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.profile_hit, "restart must remember the backend choice");
        assert_eq!(r.scheme, Scheme::Pclr);
        assert!(r.sim_cycles.is_some());
        assert_eq!(r.output.as_i64().unwrap(), oracle);
        assert_eq!(rt.stats().inspections, 0);
        assert_eq!(rt.stats().pclr_offloads, 1);
        rt.shutdown();
    }

    // Third process, hardware disabled: the stale pclr record must not
    // wedge the class — it re-decides onto software and still answers.
    {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        });
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none());
        assert!(r.scheme.is_software());
        assert_eq!(r.output.as_i64().unwrap(), oracle);
        assert_eq!(rt.stats().pclr_offloads, 0);
        // The dead hardware entry is evicted on first mask; the class
        // re-learns a software scheme and returns to profile-hit steady
        // state instead of re-running the model on every job.
        assert_eq!(rt.stats().evictions, 1);
        rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let settled = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(settled.profile_hit, "class must settle onto software");
        assert!(settled.scheme.is_software());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn offloaded_and_software_jobs_share_one_service() {
    // Mixed traffic: an admitted small class offloads, an over-cap class
    // stays on the pool — concurrently, against the same runtime.
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        dispatchers: 2,
        shards: 4,
        pclr: Some(PclrConfig {
            max_sim_refs: 2_000, // sim_pattern has 800 refs; big has 24k
            ..PclrConfig::default()
        }),
        model: free_offload_model(),
        ..RuntimeConfig::default()
    }));
    let small = sim_pattern(39);
    let big = Arc::new(
        PatternSpec {
            num_elements: 2_000,
            iterations: 12_000,
            refs_per_iter: 2,
            coverage: 0.9,
            dist: Distribution::Uniform,
            seed: 41,
        }
        .generate(),
    );
    let small_oracle = sequential_reduce_i64(&small);
    let big_oracle = sequential_reduce_i64(&big);
    std::thread::scope(|s| {
        for c in 0..3 {
            let rt = rt.clone();
            let small = small.clone();
            let big = big.clone();
            let small_oracle = &small_oracle;
            let big_oracle = &big_oracle;
            s.spawn(move || {
                for j in 0..6 {
                    let (pat, oracle, offloaded) = if (c + j) % 2 == 0 {
                        (&small, small_oracle, true)
                    } else {
                        (&big, big_oracle, false)
                    };
                    let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
                    assert!(r.error.is_none(), "{:?}", r.error);
                    assert_eq!(r.output.as_i64().unwrap(), &oracle[..]);
                    assert_eq!(
                        r.sim_cycles.is_some(),
                        offloaded,
                        "class routing must follow the admission cap"
                    );
                }
            });
        }
    });
    let stats = rt.stats();
    assert_eq!(stats.completed, 18);
    assert_eq!(stats.pclr_offloads, 9, "every small-class job offloads");
}
