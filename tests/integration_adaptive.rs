//! Cross-crate integration: the adaptive runtime over the paper's workload
//! generators, end to end.

use smartapps::prelude::*;
use smartapps::workloads::{fig3_rows, sequential_reduce};

/// The adaptive runtime must produce oracle-identical results on every
/// Figure 3 application shape (subsampled for test speed).
#[test]
fn adaptive_runtime_correct_on_all_fig3_shapes() {
    for (k, row) in fig3_rows().iter().enumerate() {
        let pat = row.pattern(1000 + k as u64);
        let pat = pat.truncate_iterations(20_000.min(pat.num_iterations()));
        let mut smart = AdaptiveReduction::new(k as u64, 4, row.lw_feasible);
        let (got, log) = smart.execute(&pat, &|_i, r| contribution(r));
        let oracle = sequential_reduce(&pat);
        for (e, (a, b)) in oracle.iter().zip(got.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{} row {k} elem {e}: {a} vs {b} (scheme {})",
                row.app,
                log.scheme
            );
        }
    }
}

/// The model's recommendation must place within the measured top three
/// schemes for the canonical dense and sparse extremes (timing-based, so
/// we allow slack but the extremes are unambiguous).
#[test]
fn model_extremes_agree_with_measurement() {
    // Dense, high reuse: rep-family territory; hash must NOT win.
    let dense = PatternSpec {
        num_elements: 20_000,
        iterations: 400_000,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: Distribution::Uniform,
        seed: 1,
    }
    .generate();
    let (ranking, _) = rank_schemes(&dense, &|_i, r| contribution(r), 4, false, 3);
    assert_ne!(
        ranking[0].scheme,
        Scheme::Hash,
        "hash cannot win dense reuse"
    );

    // Ultra sparse: rep must be last by a wide margin.
    let sparse = PatternSpec {
        num_elements: 1_000_000,
        iterations: 500,
        refs_per_iter: 4,
        coverage: 0.002,
        dist: Distribution::Uniform,
        seed: 2,
    }
    .generate();
    let (ranking, _) = rank_schemes(&sparse, &|_i, r| contribution(r), 4, false, 3);
    assert_eq!(
        ranking.last().unwrap().scheme,
        Scheme::Rep,
        "rep pays O(N) sweeps for 2,000 updates: must rank last; got {:?}",
        ranking.iter().map(|t| t.scheme).collect::<Vec<_>>()
    );
}

/// The compiled multi-version path (IR -> recognition -> adaptive
/// execution) agrees with a hand-rolled loop.
#[test]
fn compiled_reduction_end_to_end() {
    use smartapps::core::recognize::build::{histogram_update, indirect_load};
    use smartapps::core::recognize::LoopNest;
    let l = LoopNest {
        stmts: vec![histogram_update(0, 1, indirect_load(2, 1))],
    };
    let mut c = CompiledReduction::compile(&l, 9, 3, false).unwrap();
    let n = 256;
    let iters = 20_000;
    let x: Vec<f64> = (0..iters).map(|i| ((i * 31) % n) as f64).collect();
    let f: Vec<f64> = (0..n).map(|e| 1.0 + e as f64).collect();
    let inputs = Inputs::default().bind(1, &x).bind(2, &f);
    let (w, _) = c.run(n, iters, &inputs);
    let mut expect = vec![0.0; n];
    for &xi in x.iter().take(iters) {
        let idx = xi as usize;
        expect[idx] += f[idx];
    }
    for (e, (a, b)) in expect.iter().zip(w.iter()).enumerate() {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "elem {e}");
    }
}

/// Repeated invocations must amortize: later invocations skip the
/// inspector on a stable pattern.
#[test]
fn inspector_amortized_across_invocations() {
    let pat = PatternSpec {
        num_elements: 4_096,
        iterations: 50_000,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: Distribution::Uniform,
        seed: 3,
    }
    .generate();
    let mut smart = AdaptiveReduction::new(11, 4, false);
    let mut characterizations = 0;
    for _ in 0..8 {
        let (_, log) = smart.execute(&pat, &|_i, r| contribution(r));
        characterizations += log.characterized as usize;
    }
    assert!(
        characterizations <= 2,
        "stable pattern re-characterized {characterizations}/8 times"
    );
}

/// Failure injection: the loop body's cost explodes mid-run (simulating
/// external interference or a platform fault).  The feedback loop must
/// escalate beyond `Keep` while the interference lasts — the "large
/// adaption (failure, phase change)" arc of Figure 1 — and settle again
/// after it clears.
#[test]
fn interference_triggers_escalation_and_recovery() {
    use smartapps::core::toolbox::Adaptation;
    use std::sync::atomic::{AtomicBool, Ordering};

    let pat = PatternSpec {
        num_elements: 8_192,
        iterations: 60_000,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: Distribution::Uniform,
        seed: 21,
    }
    .generate();
    let interfere = AtomicBool::new(false);
    let body = |_i: usize, r: usize| {
        let mut v = contribution(r);
        if interfere.load(Ordering::Relaxed) {
            // ~30x extra work per reference while the fault is active.
            for k in 0..30 {
                v += contribution(r.wrapping_add(k)) * 1e-12;
            }
        }
        v
    };
    let mut smart = AdaptiveReduction::new(77, 4, false);
    // Warm, stable phase.
    for _ in 0..4 {
        smart.execute(&pat, &body);
    }
    // Inject the fault for a few invocations.
    interfere.store(true, Ordering::Relaxed);
    let mut escalated = false;
    for _ in 0..4 {
        let (_, log) = smart.execute(&pat, &body);
        escalated |= log.adaptation != Adaptation::Keep;
    }
    assert!(escalated, "a 30x slowdown must not read as on-target");
    // Clear the fault: the loop keeps producing correct results throughout
    // and eventually returns to Keep/Tune.
    interfere.store(false, Ordering::Relaxed);
    let mut settled = false;
    for _ in 0..6 {
        let (w, log) = smart.execute(&pat, &body);
        assert!(w.iter().all(|v| v.is_finite()));
        settled = matches!(log.adaptation, Adaptation::Keep | Adaptation::Tune);
    }
    assert!(settled, "feedback loop must settle after the fault clears");
}
