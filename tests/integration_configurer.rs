//! The full SmartApp hardware-adaptation story: the ToolBox's Configurer
//! reconfigures the (simulated) platform, the application tries the
//! configurations on its own workload, and commits to the winner — "the
//! SMARTAPP performs a global optimization ... the resulting code and
//! resource customization should lead to major speedups".

use smartapps::core::configurer::{
    Configurer, Placement, ReductionHw, SimConfigurer, SystemConfig,
};
use smartapps::sim::Machine;
use smartapps::workloads::tracegen::{traces_for, SimScheme, TraceParams};
use smartapps::workloads::{Distribution, PatternSpec};
use std::sync::Arc;

fn simulate(conf: &SimConfigurer, pat: &Arc<smartapps::workloads::AccessPattern>) -> u64 {
    let cfg = conf.machine_config();
    let nodes = cfg.nodes;
    let scheme = if conf.use_pclr() {
        SimScheme::Pclr
    } else {
        SimScheme::Sw
    };
    let traces = traces_for(scheme, pat, nodes, TraceParams::default());
    let mut m = Machine::with_placement(cfg, traces, conf.placement_policy());
    m.run().total_cycles
}

/// Evaluate candidate system configurations on the application's own loop
/// (the paper's "compute optimal configuration (arch, OS, data layout...)"
/// step) and verify the chosen one is the measured best.
#[test]
fn configurer_trial_selects_pclr_for_reduction_loop() {
    let pat = Arc::new(
        PatternSpec {
            num_elements: 32_768,
            iterations: 6_000,
            refs_per_iter: 8,
            coverage: 1.0,
            dist: Distribution::Clustered { window: 1024 },
            seed: 9,
        }
        .generate(),
    );
    let candidates = [
        ("sw/first-touch", ReductionHw::Off, Placement::FirstTouch),
        (
            "hw/first-touch",
            ReductionHw::Hardwired,
            Placement::FirstTouch,
        ),
        (
            "flex/first-touch",
            ReductionHw::Programmable,
            Placement::FirstTouch,
        ),
        (
            "hw/round-robin",
            ReductionHw::Hardwired,
            Placement::RoundRobin,
        ),
    ];
    let mut results = Vec::new();
    let mut conf = SimConfigurer::new(8);
    for (name, hw, placement) in candidates {
        let rec = conf.apply(&SystemConfig {
            threads: 8,
            reduction_hw: hw,
            placement,
        });
        // Reconfiguration must be visible (each candidate differs).
        assert!(!rec.is_noop() || results.is_empty());
        results.push((name, simulate(&conf, &pat)));
    }
    results.sort_by_key(|(_, c)| *c);
    let (best_name, best_cycles) = results[0];
    // For a reduction-dominated loop, hardwired PCLR with first-touch
    // placement must win the trial.
    assert_eq!(best_name, "hw/first-touch", "results: {results:?}");
    // And the Configurer can commit to it.
    let rec = conf.apply(&SystemConfig {
        threads: 8,
        reduction_hw: ReductionHw::Hardwired,
        placement: Placement::FirstTouch,
    });
    assert!(!rec.is_noop(), "switching back from the last candidate");
    assert_eq!(simulate(&conf, &pat), best_cycles, "deterministic replay");
}

/// The host configurer's thread knob integrates with the reduction
/// library: fewer threads -> same results.
#[test]
fn host_configurer_threads_flow_into_execution() {
    use smartapps::core::configurer::HostConfigurer;
    use smartapps::prelude::*;
    let pat = PatternSpec {
        num_elements: 1_000,
        iterations: 5_000,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: Distribution::Uniform,
        seed: 2,
    }
    .generate();
    let mut host = HostConfigurer::new(8);
    let w8 = run_scheme(
        Scheme::Rep,
        &pat,
        &|_i, r| contribution(r),
        host.threads(),
        None,
    );
    host.apply(&SystemConfig {
        threads: 2,
        ..Default::default()
    });
    assert_eq!(host.threads(), 2);
    let w2 = run_scheme(
        Scheme::Rep,
        &pat,
        &|_i, r| contribution(r),
        host.threads(),
        None,
    );
    for (a, b) in w8.iter().zip(w2.iter()) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }
}
