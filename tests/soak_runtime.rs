//! Concurrency soak: a multi-thread submit/`submit_batch` storm with
//! randomly panicking job bodies and a shutdown fired in the middle of
//! it, asserting the service's completion invariant — **every handle
//! resolves**, with either a correct value or a typed [`JobError`], and
//! no job is lost or left hanging.
//!
//! The storm deliberately mixes every failure channel the runtime has:
//! poisoned bodies (→ `Panic`), structurally invalid patterns (→
//! `Rejected`), and submissions racing the closing queue (→ `Shutdown`).
//! Results are collected by polling [`JobHandle::try_wait`] under a
//! deadline, so a lost wakeup fails the test with a message instead of
//! hanging CI.
//!
//! Run it under `--release` too (the CI matrix does): timing-dependent
//! paths — batch coalescing, work stealing, the shutdown race — shift
//! with optimization, and the invariant must hold in every interleaving.
//!
//! [`JobError`]: smartapps::runtime::JobError
//! [`JobHandle::try_wait`]: smartapps::runtime::JobHandle::try_wait

use smartapps::runtime::{
    Completion, CompletionSet, JobErrorKind, JobHandle, JobSpec, Runtime, RuntimeConfig,
};
use smartapps::workloads::pattern::sequential_reduce_i64;
use smartapps::workloads::{contribution_i64, AccessPattern, Distribution, PatternSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const CLIENTS: usize = 6;
const JOBS_PER_CLIENT: usize = 40;
const RESOLVE_DEADLINE: Duration = Duration::from_secs(120);

fn pattern(seed: u64) -> Arc<AccessPattern> {
    Arc::new(
        PatternSpec {
            num_elements: 800,
            iterations: 1500,
            refs_per_iter: 2,
            coverage: 0.8,
            dist: Distribution::Uniform,
            seed,
        }
        .generate(),
    )
}

/// Deterministic "randomness": whether job `j` of client `c` panics.
fn poisoned(c: usize, j: usize) -> bool {
    (c.wrapping_mul(31).wrapping_add(j))
        .wrapping_mul(2654435761)
        .is_multiple_of(5)
}

/// Poll a handle to resolution under the global deadline.
fn resolve(h: JobHandle, deadline: Instant) -> smartapps::runtime::JobResult {
    loop {
        if let Some(r) = h.try_wait() {
            return r;
        }
        assert!(
            Instant::now() < deadline,
            "handle did not resolve before the deadline: lost job"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn storm_with_panics_and_mid_storm_shutdown_loses_no_handle() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 3,
        shards: 8,
        dispatchers: 2,
        max_batch: 16,
        max_fuse: 4,
        ..RuntimeConfig::default()
    });
    let classes: Vec<Arc<AccessPattern>> = (0..4).map(|s| pattern(900 + s)).collect();
    let oracles: Vec<Vec<i64>> = classes.iter().map(|p| sequential_reduce_i64(p)).collect();
    let broken = Arc::new(AccessPattern {
        num_elements: 2,
        iter_ptr: vec![0, 1],
        indices: vec![9],
    });

    let start = Arc::new(Barrier::new(CLIENTS + 1));
    let deadline = Instant::now() + RESOLVE_DEADLINE;
    let values = AtomicUsize::new(0);
    let panics = AtomicUsize::new(0);
    let shutdowns = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let rt = &rt;
            let start = start.clone();
            let classes = &classes;
            let oracles = &oracles;
            let broken = broken.clone();
            let (values, panics, shutdowns, rejected) = (&values, &panics, &shutdowns, &rejected);
            s.spawn(move || {
                start.wait();
                let mut handles: Vec<(usize, bool, JobHandle)> = Vec::new();
                let mut j = 0;
                while j < JOBS_PER_CLIENT {
                    let which = (c + j) % classes.len();
                    let mk = |jj: usize| {
                        let which = (c + jj) % classes.len();
                        if poisoned(c, jj) {
                            JobSpec::i64(classes[which].clone(), move |_i, _r| {
                                panic!("soak poison {c}/{jj}")
                            })
                        } else {
                            JobSpec::i64(classes[which].clone(), |_i, r| contribution_i64(r))
                        }
                    };
                    if j % 11 == 3 {
                        // A structurally invalid submission in the mix.
                        handles.push((
                            0,
                            true,
                            rt.submit(JobSpec::i64(broken.clone(), |_i, _r| 1)),
                        ));
                    }
                    if j % 7 == 0 {
                        // Batch submission: 4 jobs at once.
                        let hi = (j + 4).min(JOBS_PER_CLIENT);
                        let specs: Vec<JobSpec> = (j..hi).map(mk).collect();
                        for (jj, h) in (j..hi).zip(rt.submit_batch(specs)) {
                            let which = (c + jj) % classes.len();
                            handles.push((which, poisoned(c, jj), h));
                        }
                        j = hi;
                    } else {
                        handles.push((which, poisoned(c, j), rt.submit(mk(j))));
                        j += 1;
                    }
                }
                for (which, was_poisoned, h) in handles {
                    let r = resolve(h, deadline);
                    match &r.error {
                        None => {
                            assert_eq!(
                                r.output.as_i64().unwrap(),
                                &oracles[which][..],
                                "clean job must match its oracle (class {which})"
                            );
                            values.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(e) => {
                            match e.kind {
                                JobErrorKind::Panic => {
                                    assert!(was_poisoned, "only poisoned bodies may panic: {e}");
                                    panics.fetch_add(1, Ordering::Relaxed);
                                }
                                JobErrorKind::Shutdown => {
                                    shutdowns.fetch_add(1, Ordering::Relaxed);
                                }
                                JobErrorKind::Rejected => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                JobErrorKind::Quarantined => {
                                    panic!("quarantine is disabled in this storm: {e}")
                                }
                            }
                            assert!(r.output.is_empty(), "failed jobs carry no output");
                        }
                    }
                }
            });
        }
        // Fire the shutdown from the middle of the storm: everything
        // already queued still drains; racing submissions resolve with
        // the Shutdown error kind instead of hanging their handles.
        start.wait();
        std::thread::sleep(Duration::from_millis(30));
        rt.begin_shutdown();
    });

    let stats = rt.stats();
    assert_eq!(
        stats.submitted, stats.completed,
        "every accepted job must complete: {stats:?}"
    );
    let v = values.load(Ordering::Relaxed);
    let p = panics.load(Ordering::Relaxed);
    let sd = shutdowns.load(Ordering::Relaxed);
    let rj = rejected.load(Ordering::Relaxed);
    assert_eq!(v + p + sd + rj, stats.submitted as usize);
    // The storm front-loads submissions, so some always land pre-close;
    // poisoned bodies are ~1 in 5 of them.
    assert!(
        v > 0,
        "no job resolved with a value (shutdown won the race everywhere?)"
    );
    // The measure→correct loop must run under storm conditions too: clean
    // executions report predicted-vs-measured samples, and the mean error
    // they accumulate is a number, not NaN garbage.
    assert!(
        stats.calibration_updates > 0,
        "the calibration loop never ran: {stats:?}"
    );
    assert!(stats.mean_abs_prediction_error().is_finite());
    println!(
        "soak: {v} values, {p} panics, {sd} shutdowns, {rj} rejected \
         ({} batches, {} coalesced, {} steals, {} fused, \
         {} calibration samples, mean |err| {:.3})",
        stats.batches,
        stats.coalesced,
        stats.steals,
        stats.fused_jobs,
        stats.calibration_updates,
        stats.mean_abs_prediction_error()
    );
}

/// The same storm shape, driven through the completion frontend instead
/// of per-job handles: every client submits via `submit_tagged` onto ONE
/// shared [`CompletionSet`], a single consumer thread multiplexes every
/// in-flight job, a dedicated always-panicking class exercises the
/// poisoned-class quarantine, and a shutdown fires mid-storm.  The
/// invariant is the completion contract — **exactly one** event per
/// token, across every outcome kind.
#[test]
fn tagged_storm_through_one_completion_set_delivers_exactly_once() {
    const TAGGED_CLIENTS: usize = 6;
    const TAGGED_JOBS: usize = 40;

    let rt = Runtime::new(RuntimeConfig {
        workers: 3,
        shards: 8,
        dispatchers: 2,
        max_batch: 16,
        max_fuse: 4,
        quarantine_after: 3,
        quarantine_ttl: Duration::from_secs(3600),
        ..RuntimeConfig::default()
    });
    let set = CompletionSet::with_capacity(256);
    let classes: Vec<Arc<AccessPattern>> = (0..4).map(|s| pattern(960 + s)).collect();
    let oracles: Vec<Vec<i64>> = classes.iter().map(|p| sequential_reduce_i64(p)).collect();
    // The poison class has a different shape (different signature
    // bucket), so its quarantine can never block the clean classes.
    let poison_class = Arc::new(
        PatternSpec {
            num_elements: 51_200,
            iterations: 1500,
            refs_per_iter: 2,
            coverage: 0.8,
            dist: Distribution::Uniform,
            seed: 970,
        }
        .generate(),
    );
    let broken = Arc::new(AccessPattern {
        num_elements: 2,
        iter_ptr: vec![0, 1],
        indices: vec![9],
    });

    /// What job `j` of client `c` is, derived from the token alone.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        Clean(usize),
        Poison,
        Broken,
    }
    let kind_of = |c: usize, j: usize| -> Kind {
        if j % 9 == 4 {
            Kind::Poison
        } else if j % 11 == 3 {
            Kind::Broken
        } else {
            Kind::Clean((c + j) % 4)
        }
    };
    let token_of = |c: usize, j: usize| (c * 1000 + j) as u64;

    let start = Arc::new(Barrier::new(TAGGED_CLIENTS + 1));
    let submitting = Arc::new(AtomicUsize::new(TAGGED_CLIENTS));
    let seen = std::thread::scope(|s| {
        // One consumer multiplexes every client's jobs.
        let consumer = {
            let set = &set;
            let submitting = submitting.clone();
            s.spawn(move || {
                let mut seen: HashMap<u64, Completion> = HashMap::new();
                loop {
                    match set.wait_timeout(Duration::from_millis(100)) {
                        Some(c) => {
                            assert!(
                                seen.insert(c.token, c.clone()).is_none(),
                                "token {} delivered twice",
                                c.token
                            );
                        }
                        None => {
                            if submitting.load(Ordering::Acquire) == 0 && set.in_flight() == 0 {
                                return seen;
                            }
                        }
                    }
                }
            })
        };
        for c in 0..TAGGED_CLIENTS {
            let rt = &rt;
            let set = &set;
            let start = start.clone();
            let submitting = submitting.clone();
            let classes = &classes;
            let poison_class = poison_class.clone();
            let broken = broken.clone();
            s.spawn(move || {
                start.wait();
                for j in 0..TAGGED_JOBS {
                    let token = token_of(c, j);
                    match kind_of(c, j) {
                        Kind::Clean(which) => {
                            if j % 7 == 0 {
                                // Batch submission path for a few.
                                rt.submit_batch_tagged(
                                    vec![(
                                        token,
                                        JobSpec::i64(classes[which].clone(), |_i, r| {
                                            contribution_i64(r)
                                        }),
                                    )],
                                    set,
                                );
                            } else {
                                rt.submit_tagged(
                                    JobSpec::i64(classes[which].clone(), |_i, r| {
                                        contribution_i64(r)
                                    }),
                                    token,
                                    set,
                                );
                            }
                        }
                        Kind::Poison => {
                            rt.submit_tagged(
                                JobSpec::i64(poison_class.clone(), move |_i, _r| {
                                    panic!("tagged poison {c}/{j}")
                                }),
                                token,
                                set,
                            );
                        }
                        Kind::Broken => {
                            rt.submit_tagged(JobSpec::i64(broken.clone(), |_i, _r| 1), token, set);
                        }
                    }
                }
                submitting.fetch_sub(1, Ordering::Release);
            });
        }
        // Shutdown fires mid-storm, as in the handle-based test.
        start.wait();
        std::thread::sleep(Duration::from_millis(30));
        rt.begin_shutdown();
        consumer.join().unwrap()
    });

    assert_eq!(
        seen.len(),
        TAGGED_CLIENTS * TAGGED_JOBS,
        "every token exactly once"
    );
    let (mut values, mut panics, mut quarantined, mut shutdowns, mut rejected) = (0, 0, 0, 0, 0);
    for c in 0..TAGGED_CLIENTS {
        for j in 0..TAGGED_JOBS {
            let completion = &seen[&token_of(c, j)];
            let kind = kind_of(c, j);
            match (&completion.result.error, kind) {
                (None, Kind::Clean(which)) => {
                    assert_eq!(
                        completion.result.output.as_i64().unwrap(),
                        &oracles[which][..],
                        "client {c} job {j}"
                    );
                    values += 1;
                }
                (Some(e), k) => {
                    assert!(completion.result.output.is_empty());
                    match e.kind {
                        JobErrorKind::Panic => {
                            assert_eq!(k, Kind::Poison, "only poison may panic: {e}");
                            panics += 1;
                        }
                        JobErrorKind::Quarantined => {
                            assert_eq!(k, Kind::Poison, "only poison may quarantine: {e}");
                            quarantined += 1;
                        }
                        JobErrorKind::Shutdown => shutdowns += 1,
                        JobErrorKind::Rejected => {
                            assert_eq!(k, Kind::Broken, "only broken may reject: {e}");
                            rejected += 1;
                        }
                    }
                }
                (None, k) => panic!("client {c} job {j} ({k:?}) resolved clean"),
            }
        }
    }
    let stats = rt.stats();
    assert_eq!(stats.submitted, stats.completed);
    assert_eq!(
        values + panics + quarantined + shutdowns + rejected,
        TAGGED_CLIENTS * TAGGED_JOBS
    );
    assert!(values > 0, "some clean jobs must land before the shutdown");
    assert_eq!(stats.quarantined, quarantined as u64);
    println!(
        "tagged soak: {values} values, {panics} panics, {quarantined} quarantined, \
         {shutdowns} shutdowns, {rejected} rejected ({} batches, {} coalesced)",
        stats.batches, stats.coalesced
    );
}

#[test]
fn repeated_storms_against_one_service_stay_healthy() {
    // No shutdown here: three consecutive storms reuse one service, so
    // profile hits and coalescing paths from earlier waves feed later
    // ones (the long-lived-service shape the runtime exists for).
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        shards: 4,
        dispatchers: 2,
        ..RuntimeConfig::default()
    });
    let pat = pattern(990);
    let oracle = sequential_reduce_i64(&pat);
    let deadline = Instant::now() + RESOLVE_DEADLINE;
    for wave in 0..3 {
        std::thread::scope(|s| {
            for c in 0..4 {
                let rt = &rt;
                let pat = &pat;
                let oracle = &oracle;
                s.spawn(move || {
                    for j in 0..10 {
                        let poison = poisoned(c + wave, j);
                        let h = if poison {
                            rt.submit(JobSpec::i64(pat.clone(), |_i, _r| panic!("wave poison")))
                        } else {
                            rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)))
                        };
                        let r = resolve(h, deadline);
                        match r.error {
                            None => assert_eq!(r.output.as_i64().unwrap(), &oracle[..]),
                            Some(e) => {
                                assert_eq!(e.kind, JobErrorKind::Panic);
                                assert!(poison);
                            }
                        }
                    }
                });
            }
        });
    }
    let stats = rt.stats();
    assert_eq!(stats.submitted, 120);
    assert_eq!(stats.completed, 120);
}
