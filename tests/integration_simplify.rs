//! End-to-end tests of the simplification pass through the service
//! wire: a client uploads an overlapping-window CSR structure, floods
//! K = 8 declared-uniform jobs at it over both protocol versions, and
//! the server must answer with oracle-exact results *while* executing
//! them through the difference-array rewrite (`simplified_jobs` in the
//! stats response).  The recognizer's verdict must also survive a
//! profile-store restart: a second service on the same store starts
//! with the `simp` record loaded and still rewrites.

use smartapps::runtime::{ProfileStore, Runtime, RuntimeConfig};
use smartapps::server::{
    checksum, DoneOutcome, Payload, ReplyMode, Server, ServerConfig, SubmitArgs, UploadArgs,
    WireBody, WireSource,
};
use smartapps::workloads::{contribution, contribution_i64, AccessPattern};
use std::sync::Arc;

const K: usize = 8;

/// An overlapping sliding window big enough to clear the default cost
/// guard: 4096 iterations × 16 refs = 65 536 walked references against
/// a rewritten plan of 4096 + 2048 + 1 ops.
fn window_pattern() -> AccessPattern {
    let n = 2048usize;
    let (iters, width, stride) = (4096usize, 16usize, 3usize);
    let rows: Vec<Vec<u32>> = (0..iters)
        .map(|i| {
            let lo = (i * stride) % (n - width + 1);
            (lo as u32..(lo + width) as u32).collect()
        })
        .collect();
    AccessPattern::from_iters(n, &rows)
}

/// What the server computes for a `usum` body: per-element wrapping sums
/// of the iteration-uniform i64 contribution.
fn usum_oracle(pat: &AccessPattern) -> Vec<i64> {
    let mut out = vec![0i64; pat.num_elements];
    for (i, _r, x) in pat.iter_refs() {
        out[x as usize] = out[x as usize].wrapping_add(contribution_i64(i));
    }
    out
}

/// What the server computes for a `fusum` body, in row order (the
/// reference for a tolerance compare).
fn fusum_oracle(pat: &AccessPattern) -> Vec<f64> {
    let mut out = vec![0f64; pat.num_elements];
    for (i, _r, x) in pat.iter_refs() {
        out[x as usize] += contribution(i);
    }
    out
}

fn connect(server: &Server) -> smartapps::server::Client {
    smartapps::server::Client::connect(server.local_addr()).expect("connect")
}

fn upload(client: &mut smartapps::server::Client, pat: &AccessPattern) -> u64 {
    client
        .upload(UploadArgs {
            token: 1,
            num_elements: pat.num_elements,
            iter_ptr: pat.iter_ptr.clone(),
            indices: pat.indices.clone(),
        })
        .expect("upload")
}

/// Flood `K` declared-uniform jobs at the uploaded handle and check
/// every reply against the oracle; returns how many `done` lines the
/// drain barrier acknowledged.
fn flood_usum(client: &mut smartapps::server::Client, handle: u64, oracle: &[i64]) {
    for t in 0..K as u64 {
        // Alternate reply modes: full arrays and checksum acks must both
        // describe the same rewritten output.
        let reply = if t % 2 == 0 {
            ReplyMode::Full
        } else {
            ReplyMode::Ack
        };
        client
            .submit(SubmitArgs {
                token: t,
                reply,
                body: WireBody::Usum,
                source: WireSource::Handle(handle),
            })
            .expect("submit");
    }
    let completed = client.drain().expect("drain");
    assert_eq!(completed as usize, K);
    for _ in 0..K {
        let done = client.next_done().expect("next_done");
        match done.outcome {
            DoneOutcome::Ok { payload, .. } => match payload {
                Payload::Full(values) => assert_eq!(values, oracle, "token {}", done.token),
                Payload::Checksum { len, sum } => {
                    assert_eq!(len, oracle.len(), "token {}", done.token);
                    assert_eq!(sum, checksum(oracle), "token {}", done.token);
                }
                other => panic!("unexpected payload {other:?}"),
            },
            other => panic!("token {} failed: {other:?}", done.token),
        }
    }
}

fn stat(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("stats response missing {key}"))
        .1
}

/// The headline flood: K = 8 overlapping-window jobs over the text wire
/// execute through the rewrite (stats prove it) with oracle-exact
/// answers, and the binary wire's `fusum` body does the same for f64.
#[test]
fn window_flood_over_the_wire_is_simplified_and_oracle_exact() {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        dispatchers: 1,
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start");
    let pat = window_pattern();

    // Text protocol, i64.
    let mut client = connect(&server);
    let handle = upload(&mut client, &pat);
    flood_usum(&mut client, handle, &usum_oracle(&pat));
    let stats = client.stats().expect("stats");
    assert!(
        stat(&stats, "simplified_jobs") >= K as u64,
        "flood must run through the rewrite: {stats:?}"
    );
    assert_eq!(stat(&stats, "simplify_rejects"), 0, "{stats:?}");

    // Binary protocol, f64: the new wire2 body tag round-trips and the
    // rewritten scan stays within reassociation tolerance.
    let mut bin = connect(&server);
    bin.upgrade_binary().expect("upgrade");
    let handle = upload(&mut bin, &pat);
    for t in 0..K as u64 {
        bin.submit(SubmitArgs {
            token: 100 + t,
            reply: ReplyMode::Full,
            body: WireBody::Fusum,
            source: WireSource::Handle(handle),
        })
        .expect("submit fusum");
    }
    assert_eq!(bin.drain().expect("drain") as usize, K);
    let oracle = fusum_oracle(&pat);
    for _ in 0..K {
        let done = bin.next_done().expect("next_done");
        match done.outcome {
            DoneOutcome::Ok {
                payload: Payload::FullF64(values),
                ..
            } => {
                for (e, (a, b)) in oracle.iter().zip(&values).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "token {} element {e}: {a} vs {b}",
                        done.token
                    );
                }
            }
            other => panic!("token {} failed: {other:?}", done.token),
        }
    }
    let stats = bin.stats().expect("stats");
    assert!(stat(&stats, "simplified_jobs") >= 2 * K as u64, "{stats:?}");

    server.shutdown();
}

/// The recognizer's per-class verdict is part of the profile store: a
/// restarted service loads the `simp` record from disk and the flood
/// rewrites again on the very first batch.
#[test]
fn rewrite_survives_a_profile_store_restart() {
    let dir = std::env::temp_dir().join("smartapps-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("simplify-profiles-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = RuntimeConfig {
        workers: 2,
        dispatchers: 1,
        profile_path: Some(path.clone()),
        ..RuntimeConfig::default()
    };
    let pat = window_pattern();
    let oracle = usum_oracle(&pat);

    {
        let rt = Arc::new(Runtime::new(cfg.clone()));
        let server = Server::start(rt.clone(), ServerConfig::default()).expect("start");
        let mut client = connect(&server);
        let handle = upload(&mut client, &pat);
        flood_usum(&mut client, handle, &oracle);
        let stats = client.stats().expect("stats");
        assert!(stat(&stats, "simplified_jobs") >= K as u64, "{stats:?}");
        server.shutdown();
        // Dropping the last runtime handle persists the store.
        drop(rt);
    }

    let store = ProfileStore::load(&path).expect("load store");
    assert!(
        store.scan_verdict_len() >= 1,
        "the scan verdict must be on disk"
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.lines()
            .any(|l| l.starts_with("simp ") && l.ends_with(" 1")),
        "expected a positive simp record in:\n{text}"
    );

    {
        let rt = Arc::new(Runtime::new(cfg));
        assert!(
            rt.profile_snapshot().scan_verdict_len() >= 1,
            "restart must load the verdict"
        );
        let server = Server::start(rt.clone(), ServerConfig::default()).expect("start");
        let mut client = connect(&server);
        let handle = upload(&mut client, &pat);
        flood_usum(&mut client, handle, &oracle);
        let stats = client.stats().expect("stats");
        assert!(
            stat(&stats, "simplified_jobs") >= K as u64,
            "restart must still rewrite: {stats:?}"
        );
        assert_eq!(stat(&stats, "simplify_rejects"), 0, "{stats:?}");
        server.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}
