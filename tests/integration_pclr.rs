//! Cross-crate integration: the Figure 6/7 experiment pipeline end to end
//! (workload generation -> trace lowering -> CC-NUMA simulation), with the
//! paper's qualitative claims as assertions.

use smartapps::sim::{harmonic_mean, Machine, MachineConfig};
use smartapps::workloads::tracegen::{traces_for, SimScheme, TraceParams};
use smartapps::workloads::{table2_rows, Distribution, PatternSpec};
use std::sync::Arc;

fn run(
    pat: &Arc<smartapps::workloads::AccessPattern>,
    scheme: SimScheme,
    cfg: MachineConfig,
    params: TraceParams,
) -> smartapps::sim::RunStats {
    let n = cfg.nodes;
    let mut m = Machine::new(cfg, traces_for(scheme, pat, n, params));
    m.run()
}

/// A moderate synthetic loop: Hw > Flex > Sw ordering and the phase
/// structure of Figure 6 (PCLR: no Init, flush \u{226a} Sw merge).
#[test]
fn figure6_ordering_holds_on_synthetic_loop() {
    let pat = Arc::new(
        PatternSpec {
            num_elements: 65_536,
            iterations: 12_000,
            refs_per_iter: 8,
            coverage: 1.0,
            dist: Distribution::Clustered { window: 2048 },
            seed: 5,
        }
        .generate(),
    );
    let params = TraceParams::default();
    let procs = 8;
    let seq = run(&pat, SimScheme::Seq, MachineConfig::table1(1), params);
    let sw = run(&pat, SimScheme::Sw, MachineConfig::table1(procs), params);
    let hw = run(&pat, SimScheme::Pclr, MachineConfig::table1(procs), params);
    let flex = run(&pat, SimScheme::Pclr, MachineConfig::flex(procs), params);

    let sp = |s: &smartapps::sim::RunStats| seq.total_cycles as f64 / s.total_cycles as f64;
    assert!(sp(&hw) > sp(&flex), "Hw {} <= Flex {}", sp(&hw), sp(&flex));
    assert!(sp(&flex) > sp(&sw), "Flex {} <= Sw {}", sp(&flex), sp(&sw));
    assert!(sp(&hw) > 1.0, "PCLR must beat sequential");

    // Phase structure.
    assert_eq!(hw.breakdown().init, 0, "PCLR needs no initialization phase");
    assert!(
        sw.breakdown().init > 0,
        "software scheme pays the init sweep"
    );
    assert!(
        hw.breakdown().merge < sw.breakdown().merge,
        "flush must be cheaper than the software merge"
    );
    // The flush is bounded by cache capacity.
    let cache_lines =
        (MachineConfig::table1(procs).l1.lines() + MachineConfig::table1(procs).l2.lines()) as u64;
    assert!(hw.counters.red_flushed <= cache_lines * procs as u64);
}

/// Figure 7's scaling claim on one app: Sw merge cycles stay roughly flat
/// from 4 to 16 processors while PCLR total shrinks.
#[test]
fn figure7_sw_merge_does_not_scale() {
    let rows = table2_rows();
    let vml = rows.iter().find(|r| r.app == "Vml").unwrap();
    let pat = Arc::new(vml.pattern(vml.iters_per_invocation, 7));
    let (int, fp) = vml.work_per_iter();
    let params = TraceParams {
        work_int: int,
        work_fp: fp,
        ..Default::default()
    };

    let mut sw_merge = Vec::new();
    let mut hw_total = Vec::new();
    for procs in [4usize, 16] {
        let sw = run(&pat, SimScheme::Sw, MachineConfig::table1(procs), params);
        let hw = run(&pat, SimScheme::Pclr, MachineConfig::table1(procs), params);
        sw_merge.push(sw.breakdown().merge as f64);
        hw_total.push(hw.total_cycles as f64);
    }
    let merge_scaling = sw_merge[0] / sw_merge[1];
    assert!(
        merge_scaling < 2.5,
        "4x the processors must NOT give ~4x faster merges (got {merge_scaling:.2}x)"
    );
    assert!(
        hw_total[0] / hw_total[1] > 1.8,
        "PCLR should keep scaling: {:.2}x",
        hw_total[0] / hw_total[1]
    );
}

/// Harmonic-mean speedup over all five Table 2 apps (scaled down for test
/// runtime): the ordering of the paper's summary numbers.
#[test]
fn figure6_harmonic_means_ordered() {
    let mut sw_s = Vec::new();
    let mut hw_s = Vec::new();
    let mut flex_s = Vec::new();
    for row in &table2_rows() {
        let iters = (row.iters_per_invocation / 20).max(500);
        let pat = Arc::new(row.pattern(iters, 3));
        let (int, fp) = row.work_per_iter();
        let params = TraceParams {
            work_int: int,
            work_fp: fp,
            ..Default::default()
        };
        let seq = run(&pat, SimScheme::Seq, MachineConfig::table1(1), params);
        let sw = run(&pat, SimScheme::Sw, MachineConfig::table1(8), params);
        let hw = run(&pat, SimScheme::Pclr, MachineConfig::table1(8), params);
        let flex = run(&pat, SimScheme::Pclr, MachineConfig::flex(8), params);
        sw_s.push(seq.total_cycles as f64 / sw.total_cycles as f64);
        hw_s.push(seq.total_cycles as f64 / hw.total_cycles as f64);
        flex_s.push(seq.total_cycles as f64 / flex.total_cycles as f64);
    }
    let (sw, hw, flex) = (
        harmonic_mean(&sw_s),
        harmonic_mean(&hw_s),
        harmonic_mean(&flex_s),
    );
    assert!(
        hw > flex && flex > sw,
        "ordering: Hw {hw:.2} > Flex {flex:.2} > Sw {sw:.2}"
    );
}

/// Value tracking through the full pipeline: a PCLR simulation of a
/// generated workload combines integer contributions exactly.
#[test]
fn pclr_simulation_values_exact() {
    use smartapps::sim::addr::regions;
    let pat = Arc::new(
        PatternSpec {
            num_elements: 2_048,
            iterations: 3_000,
            refs_per_iter: 2,
            coverage: 0.5,
            dist: Distribution::Uniform,
            seed: 11,
        }
        .generate(),
    );
    let mut cfg = MachineConfig::table1(4);
    cfg.track_values = true;
    let params = TraceParams {
        op: smartapps::sim::RedOp::AddI64,
        values: true,
        ..Default::default()
    };
    let mut m = Machine::new(cfg, traces_for(SimScheme::Pclr, &pat, 4, params));
    m.run();
    let oracle = smartapps::workloads::sequential_reduce_i64(&pat);
    for (e, &want) in oracle.iter().enumerate() {
        let got = m.peek_memory(regions::shared_elem(e as u64)) as i64;
        assert_eq!(got, want, "element {e}");
    }
}
