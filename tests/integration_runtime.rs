//! End-to-end tests of the persistent reduction service: many concurrent
//! clients hammering one runtime, bit-exact results against the
//! sequential oracle, and profile-store persistence across a restart.

use smartapps::runtime::{JobSpec, ProfileStore, Runtime, RuntimeConfig};
use smartapps::workloads::pattern::{sequential_reduce, sequential_reduce_i64};
use smartapps::workloads::{
    contribution, contribution_i64, AccessPattern, Distribution, PatternSpec,
};
use std::sync::Arc;

fn pattern(seed: u64, elems: usize, iters: usize, cov: f64) -> Arc<AccessPattern> {
    Arc::new(
        PatternSpec {
            num_elements: elems,
            iterations: iters,
            refs_per_iter: 2,
            coverage: cov,
            dist: Distribution::Uniform,
            seed,
        }
        .generate(),
    )
}

/// The ISSUE's headline test: ≥100 jobs submitted concurrently from
/// multiple client threads; every integer result must equal the
/// sequential oracle bit-for-bit and every f64 result within tolerance.
#[test]
fn hundred_concurrent_jobs_match_oracles() {
    let rt = Arc::new(Runtime::with_workers(4));
    // Four workload classes of different shapes, each with a precomputed
    // oracle.
    let classes: Vec<Arc<AccessPattern>> = vec![
        pattern(1, 1000, 4000, 1.0),
        pattern(2, 4096, 2000, 0.5),
        pattern(3, 300, 6000, 0.9),
        pattern(4, 20_000, 1500, 0.05),
    ];
    let i64_oracles: Vec<Vec<i64>> = classes.iter().map(|p| sequential_reduce_i64(p)).collect();
    let f64_oracles: Vec<Vec<f64>> = classes.iter().map(|p| sequential_reduce(p)).collect();

    const CLIENTS: usize = 6;
    const JOBS_PER_CLIENT: usize = 20; // 120 jobs total
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let rt = rt.clone();
            let classes = &classes;
            let i64_oracles = &i64_oracles;
            let f64_oracles = &f64_oracles;
            s.spawn(move || {
                for j in 0..JOBS_PER_CLIENT {
                    let k = (c + j) % classes.len();
                    let pat = classes[k].clone();
                    if (c + j) % 2 == 0 {
                        let r = rt
                            .submit(JobSpec::i64(pat, |_i, rf| contribution_i64(rf)))
                            .wait();
                        assert_eq!(
                            r.output.as_i64().unwrap(),
                            &i64_oracles[k][..],
                            "client {c} job {j} (class {k}, scheme {}) wrong",
                            r.scheme
                        );
                    } else {
                        let r = rt
                            .submit(JobSpec::f64(pat, |_i, rf| contribution(rf)))
                            .wait();
                        let got = r.output.as_f64().unwrap();
                        for (e, (a, b)) in f64_oracles[k].iter().zip(got.iter()).enumerate() {
                            assert!(
                                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                                "client {c} job {j} class {k} elem {e}: {a} vs {b}"
                            );
                        }
                    }
                }
            });
        }
    });
    let stats = rt.stats();
    assert_eq!(stats.submitted, (CLIENTS * JOBS_PER_CLIENT) as u64);
    assert_eq!(stats.completed, stats.submitted);
    // Four workload classes, 120 jobs: the profile store must have
    // absorbed the decisions and served the overwhelming majority of
    // batches without inspection.
    assert!(
        stats.profile_hits + stats.inspections >= 4,
        "every class needs a decision: {stats:?}"
    );
    assert!(
        stats.inspections < stats.submitted,
        "most jobs must reuse decisions: {stats:?}"
    );
}

/// Batch submission of one class: decisions are shared, and the results
/// still match the oracle exactly.
#[test]
fn submit_batch_shares_one_decision() {
    let rt = Runtime::with_workers(3);
    let pat = pattern(7, 2000, 3000, 0.8);
    let oracle = sequential_reduce_i64(&pat);
    let handles = rt.submit_batch(
        (0..40)
            .map(|_| JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)))
            .collect(),
    );
    for h in handles {
        assert_eq!(h.wait().output.as_i64().unwrap(), &oracle[..]);
    }
    let stats = rt.stats();
    assert_eq!(stats.completed, 40);
    assert!(
        stats.inspections <= 2,
        "one class must not re-inspect per job: {stats:?}"
    );
}

/// Profile round-trip: a scheme decision learned before shutdown
/// survives a service restart through the on-disk store — the restarted
/// runtime goes straight to the remembered scheme with zero inspections.
#[test]
fn profile_store_round_trip_survives_restart() {
    let dir = std::env::temp_dir().join("smartapps-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("profiles-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = RuntimeConfig {
        workers: 3,
        profile_path: Some(path.clone()),
        ..RuntimeConfig::default()
    };
    let pat = pattern(13, 3000, 5000, 1.0);
    let oracle = sequential_reduce_i64(&pat);

    let (first_scheme, first_sig) = {
        let rt = Runtime::new(cfg.clone());
        let h = rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let sig = h.signature();
        let r = h.wait();
        assert!(!r.profile_hit);
        assert_eq!(r.output.as_i64().unwrap(), &oracle[..]);
        rt.shutdown(); // persists the store
        (r.scheme, sig)
    };

    // The on-disk text is loadable standalone and contains the class.
    let store = ProfileStore::load(&path).unwrap();
    assert!(
        store.get(first_sig).is_some(),
        "store must remember the class"
    );
    assert_eq!(store.get(first_sig).unwrap().scheme, first_scheme);

    // A restarted service reuses the decision without inspecting.
    {
        let rt = Runtime::new(cfg);
        let r = rt.run(JobSpec::i64(pat, |_i, rf| contribution_i64(rf)));
        assert!(r.profile_hit, "restart must hit the profile");
        assert_eq!(r.scheme, first_scheme);
        assert_eq!(r.output.as_i64().unwrap(), &oracle[..]);
        assert_eq!(rt.stats().inspections, 0);
    }
    let _ = std::fs::remove_file(&path);
}

/// The steal path: one shard flooded with a single workload class while
/// every other dispatcher's shards sit idle.  Cross-dispatcher stealing
/// must drain the flood (steals observed) and every result must still
/// match the oracle.
#[test]
fn flooded_shard_is_drained_by_stealing_peers() {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        shards: 8,
        dispatchers: 4,
        // One job per batch and no fusion: the owner cannot swallow the
        // flood in one pop, so its peers must steal to keep up.
        max_batch: 1,
        max_fuse: 1,
        ..RuntimeConfig::default()
    }));
    let pat = pattern(31, 2000, 4000, 0.9);
    let oracle = sequential_reduce_i64(&pat);
    // All 60 jobs carry the same signature → the same shard → one owner;
    // the other three dispatchers have nothing of their own to do.
    let handles: Vec<_> = (0..60)
        .map(|_| rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r))))
        .collect();
    for h in handles {
        let r = h.wait();
        assert!(r.error.is_none());
        assert_eq!(r.output.as_i64().unwrap(), &oracle[..]);
    }
    let stats = rt.stats();
    assert_eq!(stats.completed, 60);
    assert!(
        stats.steals > 0,
        "idle dispatchers must steal from the flooded shard: {stats:?}"
    );
}

/// Fused execution: K same-pattern sparse jobs with K different
/// contribution bodies coalesce into one hash sweep whose K outputs each
/// match the corresponding sequential oracle run.
#[test]
fn fused_batch_matches_k_sequential_oracles() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 3,
        dispatchers: 1, // deterministic coalescing: one consumer
        max_batch: 32,
        max_fuse: 8,
        ..RuntimeConfig::default()
    });
    // Occupy the lone dispatcher with a large job so the K submissions
    // below are all queued together when it next pops.
    let big = pattern(33, 50_000, 1_200_000, 1.0);
    let warm = rt.submit(JobSpec::i64(big, |_i, r| contribution_i64(r)));
    // Sparse enough that the fanout-aware fusion gate picks hash.
    let pat = Arc::new(
        PatternSpec {
            num_elements: 400_000,
            iterations: 4_000,
            refs_per_iter: 12,
            coverage: 0.004,
            dist: Distribution::Uniform,
            seed: 35,
        }
        .generate(),
    );
    const K: usize = 5;
    let handles: Vec<_> = (0..K)
        .map(|k| {
            let scale = k as i64 + 1;
            rt.submit(JobSpec::i64(pat.clone(), move |_i, r| {
                contribution_i64(r).wrapping_mul(scale)
            }))
        })
        .collect();
    warm.wait();
    // Oracle: K separate sequential runs, one per body.
    let base = sequential_reduce_i64(&pat);
    for (k, h) in handles.into_iter().enumerate() {
        let r = h.wait();
        assert!(r.error.is_none());
        let scale = k as i64 + 1;
        let expect: Vec<i64> = base.iter().map(|v| v.wrapping_mul(scale)).collect();
        assert_eq!(r.output.as_i64().unwrap(), &expect[..], "fused output {k}");
        assert_eq!(r.fused_with, K - 1, "all {K} jobs must share one sweep");
    }
    let stats = rt.stats();
    assert_eq!(stats.fused_sweeps, 1, "{stats:?}");
    assert_eq!(stats.fused_jobs, K as u64);
    // One decision for the fused batch: at most one inspection beyond the
    // warm-up job's.
    assert!(stats.inspections <= 2, "{stats:?}");
}

/// An adaptive feedback loop running on the shared pool stays correct
/// and its learned PerformanceDb flows into the persistent store.
#[test]
fn adaptive_loops_share_the_pool_and_persist() {
    let rt = Runtime::with_workers(4);
    let pat = pattern(21, 2048, 8000, 1.0);
    let oracle = sequential_reduce(&pat);
    let mut smart = rt.adaptive(1, false);
    for _ in 0..3 {
        let (out, _log) = smart.execute(&pat, &|_i, r| contribution(r));
        for (a, b) in oracle.iter().zip(out.iter()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }
    rt.persist_adaptive(&smart);
    let snap = rt.profile_snapshot();
    assert!(!snap.is_empty(), "adaptive learning must reach the store");
    // And the snapshot's text form round-trips.
    let text = snap.to_text();
    assert_eq!(ProfileStore::from_text(&text).unwrap().to_text(), text);
}
