//! End-to-end tests of the online calibration loop (`docs/MODEL.md`): a
//! service whose analytic model is deliberately mis-calibrated re-routes
//! a workload class once measured cost samples correct the model — and
//! the re-routing survives a process restart because the corrections
//! persist through the profile store's `corr` records.
//!
//! The scenario mirrors the throughput bench's cold-vs-calibrated matrix:
//! the model under-costs `hash` so badly that a dense, cache-resident
//! class — honest `rep`/`ll` territory — decides onto `hash` when cold.
//! Exploration slots measure the schemes the model mis-ranks, profile
//! rechecks re-run the decision under the accumulated corrections (the
//! paper's "Redecide" adaptation), the class flips off `hash`, and a
//! restarted service — corrections loaded, zero warm-up traffic — keeps
//! deciding the measured-faster way even for classes it has never
//! profiled.

use smartapps::core::toolbox::DomainKey;
use smartapps::reductions::{DecisionModel, ModelParams, Scheme};
use smartapps::runtime::{CalibrationConfig, JobSpec, ProfileStore, Runtime, RuntimeConfig};
use smartapps::workloads::pattern::sequential_reduce_i64;
use smartapps::workloads::{
    contribution_i64, AccessPattern, Distribution, PatternChars, PatternSpec,
};
use std::sync::Arc;

/// A dense, cache-resident, high-reuse class: honest models send it to
/// the privatizing family (`rep`/`ll`/`sel`, or their lane-striped
/// `simd` variant when the vectorized backend is enabled); the lying
/// model below sends it to `hash`.
fn dense(iterations: usize) -> Arc<AccessPattern> {
    Arc::new(
        PatternSpec {
            num_elements: 4096,
            iterations,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 7,
        }
        .generate(),
    )
}

/// A model that lies about `hash`: the per-reference probe is priced at
/// 2% of its honest constant, so `hash` wins the cold analytic ranking
/// on dense classes where it measurably loses by a wide margin.
fn lying_model() -> DecisionModel {
    DecisionModel::new(ModelParams {
        hash_per_ref: 0.05,
        hash_merge_elem: 0.5,
        ..ModelParams::default()
    })
}

fn config(path: &std::path::Path, calibration: CalibrationConfig) -> RuntimeConfig {
    RuntimeConfig {
        workers: 2,
        dispatchers: 1,
        model: lying_model(),
        calibration,
        profile_path: Some(path.to_path_buf()),
        ..RuntimeConfig::default()
    }
}

#[test]
fn calibration_reroutes_a_class_and_the_rerouting_survives_restart() {
    let dir = std::env::temp_dir().join("smartapps-calibration-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("store-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // 40k iterations: signature bucket log2(40000) = 16.
    let pat = dense(40_000);
    let oracle = sequential_reduce_i64(&pat);
    let domain = DomainKey::of(&PatternChars::measure(&pat));

    // ── Phase 1+2 (cold → measure): the lying model routes the class to
    // hash; repeats are profile hits that keep feeding the calibrator,
    // every 3rd batch explores an unmeasured scheme, and every 4th
    // profile hit rechecks the entry under the corrected ranking.
    {
        let rt = Runtime::new(config(
            &path,
            CalibrationConfig {
                explore_every: 3,
                recheck_every: 4,
                probe_fused_every: 0,
            },
        ));
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none());
        assert_eq!(
            r.scheme,
            Scheme::Hash,
            "the mis-calibrated model must pick hash cold"
        );
        let mut last = r.scheme;
        for _ in 0..30 {
            let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
            assert!(r.error.is_none());
            assert_eq!(r.output.as_i64().unwrap(), oracle);
            last = r.scheme;
        }
        let stats = rt.stats();
        assert!(stats.calibration_updates > 0, "the loop must be running");
        assert!(stats.explored > 0, "exploration must have sampled");
        assert!(
            stats.evictions >= 1,
            "a recheck must have evicted the mispredicted entry: {stats:?}"
        );
        assert_ne!(
            last,
            Scheme::Hash,
            "corrections must re-route the class (stats: {stats:?})"
        );
        // The re-route is sticky in this process: the final run rides the
        // re-recorded profile entry.
        let settled = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert_ne!(settled.scheme, Scheme::Hash);
        // And the corrected model now ranks hash above the measured
        // winner in this domain.
        assert!(
            rt.correction(Scheme::Hash, domain, false)
                > rt.correction(settled.scheme, domain, false),
            "hash must carry the larger measured/predicted correction"
        );
        rt.shutdown();
    }

    // The corrections made it to disk as corr records.
    let store = ProfileStore::load(&path).expect("store must parse");
    assert!(
        store.calibration_len() > 0,
        "corr records must persist: {}",
        std::fs::read_to_string(&path).unwrap()
    );

    // ── Phase 3 (restart, active sampling off): the profiled class stays
    // re-routed, and a *fresh* class of the same functioning domain — a
    // different iteration count, so a signature this service has never
    // profiled — decides straight onto the measured-faster scheme with
    // zero warm-up traffic: the decision comes from the persisted
    // corrections alone.
    {
        let rt = Runtime::new(config(&path, CalibrationConfig::default()));
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.profile_hit, "restart must remember the class");
        assert_ne!(
            r.scheme,
            Scheme::Hash,
            "the re-routing must survive the restart"
        );
        assert_eq!(r.output.as_i64().unwrap(), oracle);

        // 25k iterations: bucket log2(25000) = 15 — a fresh signature in
        // the same functioning domain.
        let fresh = dense(25_000);
        assert_eq!(
            DomainKey::of(&PatternChars::measure(&fresh)),
            domain,
            "the fresh class must share the functioning domain"
        );
        let r = rt.run(JobSpec::i64(fresh.clone(), |_i, r| contribution_i64(r)));
        assert!(!r.profile_hit, "a fresh signature must re-decide");
        assert_ne!(
            r.scheme,
            Scheme::Hash,
            "persisted corrections must steer the fresh decision"
        );
        assert!(
            matches!(
                r.scheme,
                Scheme::Rep | Scheme::Ll | Scheme::Sel | Scheme::Simd
            ),
            "a dense class belongs to the privatizing family, got {}",
            r.scheme
        );
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&fresh));
        rt.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}

/// Sanity leg: with an *honest* model, the passive loop (no exploration,
/// no rechecks) keeps feeding samples but never changes a decision.
///
/// Scalar-only service: the software schemes are the stable subject
/// here — the SIMD routing legs live in `crates/runtime` and
/// `prop_simd.rs`.  The zero-eviction assertion also watches the drift
/// guard's noise tolerance: these sub-millisecond runs do throw the
/// occasional >4x wall-clock outlier, and a single one must not evict.
#[test]
fn honest_model_is_not_rerouted_by_passive_calibration() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        dispatchers: 1,
        simd: false,
        ..RuntimeConfig::default()
    });
    let pat = dense(30_000);
    let first = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
    assert!(first.scheme.is_software());
    assert_ne!(first.scheme, Scheme::Hash);
    for _ in 0..8 {
        rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
    }
    let later = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
    assert_eq!(
        later.scheme, first.scheme,
        "passive calibration of a well-modeled class must not flip it"
    );
    let stats = rt.stats();
    assert!(stats.calibration_updates > 0);
    assert_eq!(stats.explored, 0);
    assert_eq!(stats.evictions, 0);
}
